#include "orch/placement.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/strings.hpp"

namespace surfos::orch {

std::vector<MountCandidate> wall_mounts(double x0, double x1, double y0,
                                        double y1, double z,
                                        double spacing_m) {
  if (x1 <= x0 || y1 <= y0 || spacing_m <= 0.0) {
    throw std::invalid_argument("wall_mounts: bad rectangle or spacing");
  }
  // Mounts sit slightly off the wall plane so their propagation legs never
  // graze the wall geometry itself.
  constexpr double kStandoff = 0.06;
  std::vector<MountCandidate> out;
  const auto add_run = [&](geom::Vec3 start, geom::Vec3 step, double length,
                           geom::Vec3 normal, const char* wall) {
    const auto count = static_cast<std::size_t>(length / spacing_m);
    for (std::size_t i = 1; i <= count; ++i) {
      const geom::Vec3 p = start + step * (static_cast<double>(i) * spacing_m);
      out.push_back({util::format("%s-%zu", wall, i), geom::Frame(p, normal)});
    }
  };
  add_run({x0, y0 + kStandoff, z}, {1, 0, 0}, x1 - x0, {0, 1, 0}, "south");
  add_run({x0, y1 - kStandoff, z}, {1, 0, 0}, x1 - x0, {0, -1, 0}, "north");
  add_run({x0 + kStandoff, y0, z}, {0, 1, 0}, y1 - y0, {1, 0, 0}, "west");
  add_run({x1 - kStandoff, y0, z}, {0, 1, 0}, y1 - y0, {-1, 0, 0}, "east");
  return out;
}

namespace {

/// Per-location steered SNR (dB) achievable from one candidate mount.
std::vector<double> steered_snr(const sim::Environment& environment,
                                const sim::TxSpec& ap, double frequency_hz,
                                const em::LinkBudget& budget,
                                const surface::SurfacePanel& panel,
                                const std::vector<geom::Vec3>& points) {
  const sim::SceneChannel channel(&environment, frequency_hz, ap, {&panel},
                                  points);
  std::vector<double> snr(points.size());
  for (std::size_t j = 0; j < points.size(); ++j) {
    const auto config = panel.focus_config(ap.position, points[j],
                                           frequency_hz);
    const auto coeffs =
        channel.coefficients_for(std::vector<surface::SurfaceConfig>{config});
    snr[j] = budget.snr_db(std::norm(channel.evaluate(j, coeffs)));
  }
  return snr;
}

}  // namespace

PlacementPlan plan_placement(const sim::Environment& environment,
                             const sim::TxSpec& ap, em::Band band,
                             const em::LinkBudget& budget,
                             const std::vector<MountCandidate>& candidates,
                             const geom::SampleGrid& region,
                             const PlacementOptions& options) {
  if (candidates.empty()) {
    throw std::invalid_argument("plan_placement: no candidates");
  }
  if (options.surfaces_to_place == 0) {
    throw std::invalid_argument("plan_placement: zero surfaces requested");
  }
  const double frequency = em::band_center(band);
  surface::ElementDesign element = options.element;
  if (element.spacing_m <= 0.0) {
    element.spacing_m = em::wavelength(frequency) / 2.0;
  }

  const std::vector<geom::Vec3> points = region.points();
  std::vector<std::vector<double>> per_candidate_snr(candidates.size());

  PlacementPlan plan;
  plan.ranking.reserve(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const surface::SurfacePanel panel(
        candidates[c].label, candidates[c].pose, options.rows, options.cols,
        element, options.op_mode, surface::Reconfigurability::kProgrammable,
        surface::ControlGranularity::kElement);
    per_candidate_snr[c] =
        steered_snr(environment, ap, frequency, budget, panel, points);
    CandidateScore score;
    score.index = c;
    score.median_snr_db = util::median(per_candidate_snr[c]);
    score.p10_snr_db = util::quantile(per_candidate_snr[c], 0.1);
    plan.ranking.push_back(score);
  }
  std::sort(plan.ranking.begin(), plan.ranking.end(),
            [](const CandidateScore& a, const CandidateScore& b) {
              return a.median_snr_db > b.median_snr_db;
            });

  // Greedy multi-surface selection: each location is served by the best of
  // the selected surfaces; pick the candidate that maximizes the resulting
  // median each round.
  std::vector<double> best_so_far(points.size(), -300.0);
  std::vector<bool> taken(candidates.size(), false);
  for (std::size_t round = 0; round < options.surfaces_to_place; ++round) {
    double best_median = -1e18;
    std::size_t best_candidate = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (taken[c]) continue;
      std::vector<double> merged(points.size());
      for (std::size_t j = 0; j < points.size(); ++j) {
        merged[j] = std::max(best_so_far[j], per_candidate_snr[c][j]);
      }
      const double median = util::median(merged);
      if (median > best_median) {
        best_median = median;
        best_candidate = c;
      }
    }
    if (best_candidate == candidates.size()) break;
    taken[best_candidate] = true;
    plan.selected.push_back(best_candidate);
    for (std::size_t j = 0; j < points.size(); ++j) {
      best_so_far[j] =
          std::max(best_so_far[j], per_candidate_snr[best_candidate][j]);
    }
    plan.selected_median_snr_db = best_median;
  }
  return plan;
}

}  // namespace surfos::orch
