#include "orch/objectives.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "em/soa.hpp"
#include "sense/steering.hpp"
#include "sim/incremental.hpp"
#include "util/digest.hpp"
#include "util/thread_pool.hpp"

namespace surfos::orch {

namespace {

constexpr double kLn2 = 0.6931471805599453;

// Per-RX work fans out on the thread pool in fixed-size blocks: workers fill
// per-RX slots, then the block is reduced serially in RX-index order. The
// block size is a constant (never a function of the thread count), so both
// the slot values and the floating-point reduction order — and therefore
// every result bit — are identical under any SURFOS_THREADS setting, while
// scratch memory stays bounded by the block, not the full RX set.
constexpr std::size_t kRxBlock = 64;

void check(const void* channel, const void* variables) {
  if (channel == nullptr || variables == nullptr) {
    throw std::invalid_argument("objective: null channel or variables");
  }
}

/// Builds the per-objective linear-response cache, declaring each panel's
/// element -> control-group mapping so rank-1 probes can move a whole shared
/// control group at once.
std::unique_ptr<sim::ChannelEvalCache> make_eval_cache(
    const sim::SceneChannel* channel, const PanelVariables* variables) {
  auto cache = std::make_unique<sim::ChannelEvalCache>(channel);
  for (std::size_t p = 0; p < variables->panel_count(); ++p) {
    const std::size_t n = variables->panel(p).element_count();
    std::vector<std::uint32_t> group_of(n);
    for (std::size_t e = 0; e < n; ++e) {
      group_of[e] = static_cast<std::uint32_t>(variables->control_of(p, e));
    }
    cache->set_grouping(p, std::move(group_of),
                        variables->panel(p).control_count());
  }
  return cache;
}

std::vector<double> panel_losses(const PanelVariables* variables) {
  std::vector<double> losses(variables->panel_count());
  for (std::size_t p = 0; p < losses.size(); ++p) {
    losses[p] = variables->panel_loss(p);
  }
  return losses;
}

/// Ensures `cache` is based on the digest of `base`, mapping the flat
/// variable vector to coefficients only on a base change. Returns the digest
/// (also the value-memo key for this x).
util::ConfigDigest ensure_based(sim::ChannelEvalCache& cache,
                                const PanelVariables& variables,
                                std::span<const double> base) {
  const util::ConfigDigest key = util::digest_values(base);
  if (!cache.based_on(key)) {
    thread_local std::vector<em::CVec> coeff_scratch;
    variables.coefficients_into(base, coeff_scratch);
    cache.rebase(key, coeff_scratch);
  }
  return key;
}

/// Copies the quantized per-panel coefficients into SoA planes for the
/// vectorized channel entry points (bit-exact copy; padding stays zero).
void to_planes(const std::vector<em::CVec>& src,
               std::vector<em::CxPlanes>& dst) {
  dst.resize(src.size());
  for (std::size_t p = 0; p < src.size(); ++p) dst[p].assign(src[p]);
}

/// Accumulates d|h|^2/dphi for one RX into per-panel element gradients:
/// d|h|^2/dphi_e = 2 Re(conj(h) * j * c_e * dh/dc_e), scaled by `weight`.
void accumulate_power_gradient(const em::Cx& h,
                               const std::vector<em::CxPlanes>& dh_dc,
                               const std::vector<em::CxPlanes>& coefficients,
                               double weight,
                               std::vector<std::vector<double>>& elem_grads) {
  const em::Cx h_conj = std::conj(h);
  for (std::size_t p = 0; p < dh_dc.size(); ++p) {
    const double* cr = coefficients[p].re();
    const double* ci = coefficients[p].im();
    const double* dr = dh_dc[p].re();
    const double* di = dh_dc[p].im();
    for (std::size_t e = 0; e < dh_dc[p].size(); ++e) {
      const em::Cx dh_dphi =
          em::Cx{0.0, 1.0} * em::Cx{cr[e], ci[e]} * em::Cx{dr[e], di[e]};
      elem_grads[p][e] += weight * 2.0 * (h_conj * dh_dphi).real();
    }
  }
}

}  // namespace

// --- CapacityObjective -------------------------------------------------------

CapacityObjective::CapacityObjective(const sim::SceneChannel* channel,
                                     const PanelVariables* variables,
                                     std::vector<std::size_t> rx_indices,
                                     double rho, double sign)
    : channel_(channel),
      variables_(variables),
      rx_indices_(std::move(rx_indices)),
      rho_(rho),
      sign_(sign) {
  check(channel_, variables_);
  if (rx_indices_.empty()) {
    throw std::invalid_argument("CapacityObjective: no RX indices");
  }
  if (rho_ <= 0.0) throw std::invalid_argument("CapacityObjective: rho <= 0");
  panel_loss_ = panel_losses(variables_);
  cache_ = make_eval_cache(channel_, variables_);
}

CapacityObjective::~CapacityObjective() = default;

std::size_t CapacityObjective::dimension() const {
  return variables_->dimension();
}

double CapacityObjective::value(std::span<const double> x) const {
  const bool use_memo =
      sim::incremental_enabled() && cache_->memo().capacity() > 0;
  util::ConfigDigest key{};
  if (use_memo) {
    key = util::digest_values(x);
    double cached = 0.0;
    if (cache_->memo().lookup(key, cached)) return cached;
  }
  thread_local std::vector<em::CVec> coeff_scratch;
  thread_local std::vector<em::CxPlanes> coeff_planes;
  variables_->coefficients_into(x, coeff_scratch);
  to_planes(coeff_scratch, coeff_planes);
  const auto& coefficients = coeff_planes;
  std::vector<double> powers(rx_indices_.size());
  util::parallel_for(0, rx_indices_.size(), [&](std::size_t k) {
    powers[k] =
        std::norm(channel_->evaluate_planes(rx_indices_[k], coefficients));
  });
  double sum = 0.0;
  for (const double power : powers) sum += std::log2(1.0 + rho_ * power);
  const double result = -sign_ * sum / static_cast<double>(rx_indices_.size());
  if (use_memo) cache_->memo().store(key, result);
  return result;
}

void CapacityObjective::gradient_at(std::span<const double> x,
                                    double /*base_value*/,
                                    std::span<double> gradient) const {
  value_and_gradient(x, gradient);
}

double CapacityObjective::value_delta(std::span<const double> base,
                                      double base_value, std::size_t coord,
                                      double coord_value) const {
  if (!sim::incremental_enabled()) {
    return opt::Objective::value_delta(base, base_value, coord, coord_value);
  }
  ensure_based(*cache_, *variables_, base);
  const auto [p, control] = variables_->locate(coord);
  const em::Cx new_c = std::polar(panel_loss_[p], coord_value);
  double sum = 0.0;
  for (const std::size_t j : rx_indices_) {
    const double power = std::norm(cache_->evaluate_delta(j, p, control, new_c));
    sum += std::log2(1.0 + rho_ * power);
  }
  return -sign_ * sum / static_cast<double>(rx_indices_.size());
}

double CapacityObjective::value_and_gradient(std::span<const double> x,
                                             std::span<double> gradient) const {
  thread_local std::vector<em::CVec> coeff_scratch;
  thread_local std::vector<em::CxPlanes> coeff_planes;
  variables_->coefficients_into(x, coeff_scratch);
  to_planes(coeff_scratch, coeff_planes);
  const auto& coefficients = coeff_planes;
  std::fill(gradient.begin(), gradient.end(), 0.0);
  std::vector<std::vector<double>> elem_grads(variables_->panel_count());
  for (std::size_t p = 0; p < variables_->panel_count(); ++p) {
    elem_grads[p].assign(variables_->panel(p).element_count(), 0.0);
  }
  const double inv_m = 1.0 / static_cast<double>(rx_indices_.size());
  double sum = 0.0;
  const std::size_t m = rx_indices_.size();
  const std::size_t block = std::min<std::size_t>(kRxBlock, m);
  std::vector<em::Cx> h_slots(block);
  std::vector<std::vector<em::CxPlanes>> dh_slots(block);
  for (std::size_t start = 0; start < m; start += block) {
    const std::size_t count = std::min(block, m - start);
    util::parallel_for(0, count, [&](std::size_t t) {
      channel_->evaluate_with_partials_planes(rx_indices_[start + t],
                                              coefficients, h_slots[t],
                                              dh_slots[t]);
    });
    for (std::size_t t = 0; t < count; ++t) {
      const double power = std::norm(h_slots[t]);
      sum += std::log2(1.0 + rho_ * power);
      // dL/d|h|^2 = -sign/M * rho / ((1 + rho |h|^2) ln 2).
      const double weight =
          -sign_ * inv_m * rho_ / ((1.0 + rho_ * power) * kLn2);
      accumulate_power_gradient(h_slots[t], dh_slots[t], coefficients, weight,
                                elem_grads);
    }
  }
  for (std::size_t p = 0; p < variables_->panel_count(); ++p) {
    variables_->reduce_gradient(p, elem_grads[p], gradient);
  }
  return -sign_ * sum * inv_m;
}

// --- PowerDeliveryObjective --------------------------------------------------

PowerDeliveryObjective::PowerDeliveryObjective(
    const sim::SceneChannel* channel, const PanelVariables* variables,
    std::vector<std::size_t> rx_indices, double p0)
    : channel_(channel),
      variables_(variables),
      rx_indices_(std::move(rx_indices)),
      p0_(p0) {
  check(channel_, variables_);
  if (rx_indices_.empty()) {
    throw std::invalid_argument("PowerDeliveryObjective: no RX indices");
  }
  if (p0_ <= 0.0) throw std::invalid_argument("PowerDeliveryObjective: p0 <= 0");
  panel_loss_ = panel_losses(variables_);
  cache_ = make_eval_cache(channel_, variables_);
}

PowerDeliveryObjective::~PowerDeliveryObjective() = default;

std::size_t PowerDeliveryObjective::dimension() const {
  return variables_->dimension();
}

double PowerDeliveryObjective::value(std::span<const double> x) const {
  const bool use_memo =
      sim::incremental_enabled() && cache_->memo().capacity() > 0;
  util::ConfigDigest key{};
  if (use_memo) {
    key = util::digest_values(x);
    double cached = 0.0;
    if (cache_->memo().lookup(key, cached)) return cached;
  }
  thread_local std::vector<em::CVec> coeff_scratch;
  thread_local std::vector<em::CxPlanes> coeff_planes;
  variables_->coefficients_into(x, coeff_scratch);
  to_planes(coeff_scratch, coeff_planes);
  const auto& coefficients = coeff_planes;
  std::vector<double> powers(rx_indices_.size());
  util::parallel_for(0, rx_indices_.size(), [&](std::size_t k) {
    powers[k] =
        std::norm(channel_->evaluate_planes(rx_indices_[k], coefficients));
  });
  double sum = 0.0;
  for (const double power : powers) sum += power;
  const double result = -sum / (p0_ * static_cast<double>(rx_indices_.size()));
  if (use_memo) cache_->memo().store(key, result);
  return result;
}

void PowerDeliveryObjective::gradient_at(std::span<const double> x,
                                         double /*base_value*/,
                                         std::span<double> gradient) const {
  value_and_gradient(x, gradient);
}

double PowerDeliveryObjective::value_delta(std::span<const double> base,
                                           double base_value,
                                           std::size_t coord,
                                           double coord_value) const {
  if (!sim::incremental_enabled()) {
    return opt::Objective::value_delta(base, base_value, coord, coord_value);
  }
  ensure_based(*cache_, *variables_, base);
  const auto [p, control] = variables_->locate(coord);
  const em::Cx new_c = std::polar(panel_loss_[p], coord_value);
  double sum = 0.0;
  for (const std::size_t j : rx_indices_) {
    sum += std::norm(cache_->evaluate_delta(j, p, control, new_c));
  }
  return -sum / (p0_ * static_cast<double>(rx_indices_.size()));
}

double PowerDeliveryObjective::value_and_gradient(
    std::span<const double> x, std::span<double> gradient) const {
  thread_local std::vector<em::CVec> coeff_scratch;
  thread_local std::vector<em::CxPlanes> coeff_planes;
  variables_->coefficients_into(x, coeff_scratch);
  to_planes(coeff_scratch, coeff_planes);
  const auto& coefficients = coeff_planes;
  std::fill(gradient.begin(), gradient.end(), 0.0);
  std::vector<std::vector<double>> elem_grads(variables_->panel_count());
  for (std::size_t p = 0; p < variables_->panel_count(); ++p) {
    elem_grads[p].assign(variables_->panel(p).element_count(), 0.0);
  }
  const double scale = 1.0 / (p0_ * static_cast<double>(rx_indices_.size()));
  double sum = 0.0;
  const std::size_t m = rx_indices_.size();
  const std::size_t block = std::min<std::size_t>(kRxBlock, m);
  std::vector<em::Cx> h_slots(block);
  std::vector<std::vector<em::CxPlanes>> dh_slots(block);
  for (std::size_t start = 0; start < m; start += block) {
    const std::size_t count = std::min(block, m - start);
    util::parallel_for(0, count, [&](std::size_t t) {
      channel_->evaluate_with_partials_planes(rx_indices_[start + t],
                                              coefficients, h_slots[t],
                                              dh_slots[t]);
    });
    for (std::size_t t = 0; t < count; ++t) {
      sum += std::norm(h_slots[t]);
      accumulate_power_gradient(h_slots[t], dh_slots[t], coefficients, -scale,
                                elem_grads);
    }
  }
  for (std::size_t p = 0; p < variables_->panel_count(); ++p) {
    variables_->reduce_gradient(p, elem_grads[p], gradient);
  }
  return -sum * scale;
}

// --- LocalizationObjective ---------------------------------------------------

LocalizationObjective::LocalizationObjective(
    const sim::SceneChannel* channel, const PanelVariables* variables,
    std::size_t sensing_panel, std::vector<std::size_t> rx_indices,
    std::size_t spectrum_bins)
    : channel_(channel),
      variables_(variables),
      sensing_panel_(sensing_panel),
      rx_indices_(std::move(rx_indices)) {
  check(channel_, variables_);
  if (sensing_panel_ >= variables_->panel_count()) {
    throw std::invalid_argument("LocalizationObjective: bad panel index");
  }
  if (rx_indices_.empty()) {
    throw std::invalid_argument("LocalizationObjective: no RX indices");
  }
  const auto& panel = variables_->panel(sensing_panel_);
  model_ = std::make_unique<sense::AoaSensingModel>(&panel,
                                                    channel_->frequency_hz(),
                                                    spectrum_bins);
  targets_.reserve(rx_indices_.size());
  g_cache_.reserve(rx_indices_.size());
  for (std::size_t j : rx_indices_) {
    const double truth = sense::true_azimuth(panel, channel_->rx_point(j));
    targets_.push_back(model_->target_distribution(truth));
    g_cache_.push_back(channel_->rx_vector(sensing_panel_, j));
  }
  memo_ = std::make_unique<sim::DigestMemo>();
}

LocalizationObjective::~LocalizationObjective() = default;

std::size_t LocalizationObjective::dimension() const {
  return variables_->dimension();
}

double LocalizationObjective::value(std::span<const double> x) const {
  const bool use_memo = sim::incremental_enabled() && memo_->capacity() > 0;
  util::ConfigDigest key{};
  if (use_memo) {
    key = util::digest_values(x);
    double cached = 0.0;
    if (memo_->lookup(key, cached)) return cached;
  }
  thread_local std::vector<em::CVec> coeff_scratch;
  variables_->coefficients_into(x, coeff_scratch);
  const em::CVec& c = coeff_scratch[sensing_panel_];
  std::vector<double> losses(rx_indices_.size());
  util::parallel_for(0, rx_indices_.size(), [&](std::size_t k) {
    losses[k] = model_->loss(c, g_cache_[k], targets_[k]);
  });
  double sum = 0.0;
  for (const double loss : losses) sum += loss;
  const double result = sum / static_cast<double>(rx_indices_.size());
  if (use_memo) memo_->store(key, result);
  return result;
}

void LocalizationObjective::gradient_at(std::span<const double> x,
                                        double /*base_value*/,
                                        std::span<double> gradient) const {
  value_and_gradient(x, gradient);
}

double LocalizationObjective::value_and_gradient(
    std::span<const double> x, std::span<double> gradient) const {
  thread_local std::vector<em::CVec> coeff_scratch;
  variables_->coefficients_into(x, coeff_scratch);
  const em::CVec& c = coeff_scratch[sensing_panel_];
  std::fill(gradient.begin(), gradient.end(), 0.0);
  const std::size_t n = variables_->panel(sensing_panel_).element_count();
  std::vector<double> elem_grad(n, 0.0);
  const double inv_m = 1.0 / static_cast<double>(rx_indices_.size());
  double sum = 0.0;
  const std::size_t m = rx_indices_.size();
  const std::size_t block = std::min<std::size_t>(kRxBlock, m);
  std::vector<double> loss_slots(block);
  std::vector<std::vector<double>> grad_slots(block,
                                              std::vector<double>(n));
  for (std::size_t start = 0; start < m; start += block) {
    const std::size_t count = std::min(block, m - start);
    util::parallel_for(0, count, [&](std::size_t t) {
      loss_slots[t] = model_->loss(c, g_cache_[start + t],
                                   targets_[start + t], grad_slots[t]);
    });
    for (std::size_t t = 0; t < count; ++t) {
      sum += loss_slots[t];
      for (std::size_t e = 0; e < n; ++e) {
        elem_grad[e] += inv_m * grad_slots[t][e];
      }
    }
  }
  variables_->reduce_gradient(sensing_panel_, elem_grad, gradient);
  return sum * inv_m;
}

}  // namespace surfos::orch
