#include "orch/variables.hpp"

#include <cmath>
#include <stdexcept>

namespace surfos::orch {

namespace {

std::size_t group_of(const surface::SurfacePanel& panel, std::size_t element) {
  const std::size_t row = element / panel.cols();
  const std::size_t col = element % panel.cols();
  switch (panel.granularity()) {
    case surface::ControlGranularity::kElement: return element;
    case surface::ControlGranularity::kColumn: return col;
    case surface::ControlGranularity::kRow: return row;
    case surface::ControlGranularity::kGlobal: return 0;
  }
  return 0;
}

}  // namespace

PanelVariables::PanelVariables(
    std::vector<const surface::SurfacePanel*> panels)
    : panels_(std::move(panels)) {
  offsets_.reserve(panels_.size());
  for (const auto* p : panels_) {
    if (p == nullptr) throw std::invalid_argument("PanelVariables: null panel");
    offsets_.push_back(dimension_);
    dimension_ += p->control_count();
  }
}

std::pair<std::size_t, std::size_t> PanelVariables::range_of(
    std::size_t p) const {
  return {offsets_.at(p), panels_.at(p)->control_count()};
}

std::size_t PanelVariables::control_of(std::size_t p,
                                       std::size_t element) const {
  return group_of(*panels_.at(p), element);
}

std::vector<em::CVec> PanelVariables::coefficients(
    std::span<const double> x) const {
  std::vector<em::CVec> out;
  coefficients_into(x, out);
  return out;
}

void PanelVariables::coefficients_into(std::span<const double> x,
                                       std::vector<em::CVec>& out) const {
  if (x.size() != dimension_) {
    throw std::invalid_argument("PanelVariables: dimension mismatch");
  }
  out.resize(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    const auto& panel = *panels_[p];
    const double loss = panel_loss(p);
    const std::size_t offset = offsets_[p];
    out[p].resize(panel.element_count());
    for (std::size_t e = 0; e < panel.element_count(); ++e) {
      out[p][e] = std::polar(loss, x[offset + group_of(panel, e)]);
    }
  }
}

std::pair<std::size_t, std::size_t> PanelVariables::locate(
    std::size_t coord) const {
  if (coord >= dimension_) {
    throw std::out_of_range("PanelVariables: coordinate index");
  }
  std::size_t p = panels_.size() - 1;
  while (offsets_[p] > coord) --p;
  return {p, coord - offsets_[p]};
}

double PanelVariables::panel_loss(std::size_t p) const {
  return std::pow(10.0, -panels_.at(p)->design().insertion_loss_db / 20.0);
}

void PanelVariables::reduce_gradient(std::size_t p,
                                     std::span<const double> element_grad,
                                     std::span<double> x_grad) const {
  const auto& panel = *panels_.at(p);
  if (element_grad.size() != panel.element_count() ||
      x_grad.size() != dimension_) {
    throw std::invalid_argument("PanelVariables: gradient size mismatch");
  }
  const std::size_t offset = offsets_[p];
  for (std::size_t e = 0; e < panel.element_count(); ++e) {
    x_grad[offset + group_of(panel, e)] += element_grad[e];
  }
}

std::vector<surface::SurfaceConfig> PanelVariables::realize(
    std::span<const double> x) const {
  if (x.size() != dimension_) {
    throw std::invalid_argument("PanelVariables: dimension mismatch");
  }
  std::vector<surface::SurfaceConfig> out;
  out.reserve(panels_.size());
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    const auto& panel = *panels_[p];
    const auto [offset, count] = range_of(p);
    out.push_back(panel.expand_controls(x.subspan(offset, count)));
  }
  return out;
}

std::vector<double> PanelVariables::from_configs(
    std::span<const surface::SurfaceConfig> configs) const {
  if (configs.size() != panels_.size()) {
    throw std::invalid_argument("PanelVariables: config count mismatch");
  }
  std::vector<double> x(dimension_, 0.0);
  for (std::size_t p = 0; p < panels_.size(); ++p) {
    const auto controls = panels_[p]->extract_controls(configs[p]);
    const auto [offset, count] = range_of(p);
    for (std::size_t j = 0; j < count; ++j) x[offset + j] = controls[j];
  }
  return x;
}

}  // namespace surfos::orch
