#include "orch/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace surfos::orch {

namespace {

/// Groups active tasks by band.
std::map<em::Band, std::vector<const Task*>> by_band(
    const std::vector<const Task*>& tasks) {
  std::map<em::Band, std::vector<const Task*>> groups;
  for (const Task* t : tasks) groups[t->band].push_back(t);
  return groups;
}

std::vector<std::string> device_ids(
    const std::vector<hal::SurfaceDriver*>& drivers) {
  std::vector<std::string> ids;
  ids.reserve(drivers.size());
  for (const auto* d : drivers) ids.push_back(d->device_id());
  return ids;
}

std::uint16_t max_common_slot(const std::vector<hal::SurfaceDriver*>& drivers) {
  std::size_t slots = std::numeric_limits<std::size_t>::max();
  for (const auto* d : drivers) slots = std::min(slots, d->slot_count());
  return static_cast<std::uint16_t>(slots == 0 ? 1 : slots);
}

}  // namespace

bool task_focus(const Task& task, const hal::DeviceRegistry& registry,
                geom::Vec3& out) {
  struct Visitor {
    const hal::DeviceRegistry& registry;
    geom::Vec3& out;
    bool operator()(const LinkGoal& g) const { return endpoint(g.endpoint_id); }
    bool operator()(const PowerGoal& g) const { return endpoint(g.endpoint_id); }
    bool operator()(const CoverageGoal& g) const { return region(g.region); }
    bool operator()(const SensingGoal& g) const { return region(g.region); }
    bool operator()(const SecurityGoal& g) const { return region(g.region); }

    bool endpoint(const std::string& id) const {
      const auto* e = registry.find_endpoint(id);
      if (e == nullptr) return false;
      out = e->position;
      return true;
    }
    bool region(const geom::SampleGrid& grid) const {
      out = grid.point(grid.size() / 2);
      return true;
    }
  };
  return std::visit(Visitor{registry, out}, task.goal);
}

Schedule Scheduler::build(const std::vector<const Task*>& active,
                          hal::DeviceRegistry& registry) const {
  switch (policy_) {
    case SchedulePolicy::kPriorityJoint:
      return build_priority_joint(active, registry);
    case SchedulePolicy::kRoundRobinTdm:
      return build_tdm(active, registry, /*edf=*/false);
    case SchedulePolicy::kEarliestDeadline:
      return build_tdm(active, registry, /*edf=*/true);
    case SchedulePolicy::kSpatialPartition:
      return build_spatial(active, registry);
  }
  return {};
}

Schedule Scheduler::build_priority_joint(const std::vector<const Task*>& tasks,
                                         hal::DeviceRegistry& registry) const {
  Schedule schedule;
  for (auto& [band, group] : by_band(tasks)) {
    auto drivers = registry.surfaces_on_band(band);
    if (drivers.empty()) {
      for (const Task* t : group) schedule.starved.push_back(t->id);
      continue;
    }
    Assignment a;
    a.band = band;
    a.devices = device_ids(drivers);
    a.time_share = 1.0;
    a.slot = 0;
    double weight_sum = 0.0;
    for (const Task* t : group) {
      a.tasks.push_back(t->id);
      const double w = std::max(1.0, static_cast<double>(t->priority));
      a.weights.push_back(w);
      weight_sum += w;
    }
    for (double& w : a.weights) w /= weight_sum;
    schedule.assignments.push_back(std::move(a));
  }
  return schedule;
}

Schedule Scheduler::build_tdm(const std::vector<const Task*>& tasks,
                              hal::DeviceRegistry& registry, bool edf) const {
  Schedule schedule;
  for (auto& [band, group] : by_band(tasks)) {
    auto drivers = registry.surfaces_on_band(band);
    if (drivers.empty()) {
      for (const Task* t : group) schedule.starved.push_back(t->id);
      continue;
    }
    std::vector<const Task*> ordered = group;
    if (edf) {
      std::sort(ordered.begin(), ordered.end(),
                [](const Task* a, const Task* b) {
                  const auto da =
                      a->deadline.value_or(std::numeric_limits<hal::Micros>::max());
                  const auto db =
                      b->deadline.value_or(std::numeric_limits<hal::Micros>::max());
                  return da < db;
                });
    }
    const std::uint16_t slots = max_common_slot(drivers);
    // EDF: geometric shares favoring earlier deadlines; RR: equal shares.
    std::vector<double> shares(ordered.size());
    if (edf) {
      double total = 0.0;
      for (std::size_t i = 0; i < shares.size(); ++i) {
        shares[i] = std::pow(0.5, static_cast<double>(i));
        total += shares[i];
      }
      for (double& s : shares) s /= total;
    } else {
      std::fill(shares.begin(), shares.end(),
                1.0 / static_cast<double>(ordered.size()));
    }
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      Assignment a;
      a.band = band;
      a.devices = device_ids(drivers);
      a.tasks = {ordered[i]->id};
      a.weights = {1.0};
      a.time_share = shares[i];
      a.slot = static_cast<std::uint16_t>(i % slots);
      schedule.assignments.push_back(std::move(a));
    }
  }
  return schedule;
}

Schedule Scheduler::build_spatial(const std::vector<const Task*>& tasks,
                                  hal::DeviceRegistry& registry) const {
  Schedule schedule;
  for (auto& [band, group] : by_band(tasks)) {
    auto drivers = registry.surfaces_on_band(band);
    if (drivers.empty()) {
      for (const Task* t : group) schedule.starved.push_back(t->id);
      continue;
    }
    // Greedy nearest-surface partition: each task claims the closest surface
    // to its focus; tasks claiming the same surface are joined there.
    std::map<std::string, Assignment> per_device;
    for (const Task* t : group) {
      geom::Vec3 focus;
      if (!task_focus(*t, registry, focus)) {
        schedule.starved.push_back(t->id);
        continue;
      }
      hal::SurfaceDriver* best = nullptr;
      double best_distance = std::numeric_limits<double>::infinity();
      for (auto* d : drivers) {
        const double distance = d->panel().center().distance_to(focus);
        if (distance < best_distance) {
          best_distance = distance;
          best = d;
        }
      }
      Assignment& a = per_device[best->device_id()];
      if (a.devices.empty()) {
        a.band = band;
        a.devices = {best->device_id()};
        a.time_share = 1.0;
        a.slot = 0;
      }
      a.tasks.push_back(t->id);
      a.weights.push_back(std::max(1.0, static_cast<double>(t->priority)));
    }
    for (auto& [id, a] : per_device) {
      double total = 0.0;
      for (double w : a.weights) total += w;
      for (double& w : a.weights) w /= total;
      schedule.assignments.push_back(std::move(a));
    }
  }
  return schedule;
}

}  // namespace surfos::orch
