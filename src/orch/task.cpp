#include "orch/task.hpp"

namespace surfos::orch {

ServiceType service_type_of(const ServiceGoal& goal) noexcept {
  struct Visitor {
    ServiceType operator()(const LinkGoal&) const {
      return ServiceType::kConnectivity;
    }
    ServiceType operator()(const CoverageGoal&) const {
      return ServiceType::kCoverage;
    }
    ServiceType operator()(const SensingGoal&) const {
      return ServiceType::kSensing;
    }
    ServiceType operator()(const PowerGoal&) const {
      return ServiceType::kPowering;
    }
    ServiceType operator()(const SecurityGoal&) const {
      return ServiceType::kSecurity;
    }
  };
  return std::visit(Visitor{}, goal);
}

}  // namespace surfos::orch
