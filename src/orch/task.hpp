// Service tasks — the orchestrator's process abstraction (paper 3.2: "Each
// function call specifies the service goals as input and creates a task
// (akin to OS processes)").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "em/band.hpp"
#include "geom/grid.hpp"
#include "geom/vec3.hpp"
#include "hal/clock.hpp"
#include "telemetry/trace.hpp"

namespace surfos::orch {

using TaskId = std::uint64_t;

enum class ServiceType {
  kConnectivity,  ///< enhance_link(): one endpoint's SNR/latency.
  kCoverage,      ///< optimize_coverage(): region-wide median SNR.
  kSensing,       ///< enable_sensing(): localization/tracking accuracy.
  kPowering,      ///< init_powering(): RF energy delivery to a device.
  kSecurity,      ///< protect(): suppress signal leakage to a region.
};

constexpr const char* to_string(ServiceType t) noexcept {
  switch (t) {
    case ServiceType::kConnectivity: return "connectivity";
    case ServiceType::kCoverage: return "coverage";
    case ServiceType::kSensing: return "sensing";
    case ServiceType::kPowering: return "powering";
    case ServiceType::kSecurity: return "security";
  }
  return "?";
}

enum class TaskState {
  kPending,    ///< Admitted, not yet scheduled.
  kRunning,    ///< Holding a resource slice.
  kIdle,       ///< Alive but released its resources (paper: "setting a task
               ///< idle when not used and releasing resources").
  kCompleted,  ///< Duration elapsed or goal permanently met.
  kFailed,     ///< Unsatisfiable (no capable hardware, etc.).
};

constexpr const char* to_string(TaskState s) noexcept {
  switch (s) {
    case TaskState::kPending: return "pending";
    case TaskState::kRunning: return "running";
    case TaskState::kIdle: return "idle";
    case TaskState::kCompleted: return "completed";
    case TaskState::kFailed: return "failed";
  }
  return "?";
}

/// Larger value = more important. Mapped from application demands by the
/// service broker.
using Priority = int;
inline constexpr Priority kPriorityBackground = 0;
inline constexpr Priority kPriorityNormal = 10;
inline constexpr Priority kPriorityInteractive = 20;
inline constexpr Priority kPriorityCritical = 30;

// --- Service goals -----------------------------------------------------------

/// enhance_link("VR_headset", snr=30.0, latency=10.0)
struct LinkGoal {
  std::string endpoint_id;
  double target_snr_db = 20.0;
  double max_latency_ms = 50.0;
};

/// optimize_coverage("room", median_snr=25)
struct CoverageGoal {
  std::string region_id;
  geom::SampleGrid region{0.0, 1.0, 0.0, 1.0, 0.0, 1, 1};
  double target_median_snr_db = 20.0;
};

enum class SensingMode { kTracking, kMotion, kImaging };

/// enable_sensing("room", type="tracking", duration=3600)
struct SensingGoal {
  std::string region_id;
  geom::SampleGrid region{0.0, 1.0, 0.0, 1.0, 0.0, 1, 1};
  SensingMode mode = SensingMode::kTracking;
  double duration_s = 3600.0;
  double target_accuracy_m = 0.5;
};

/// init_powering("phone", duration=3600)
struct PowerGoal {
  std::string endpoint_id;
  double duration_s = 3600.0;
  double min_power_dbm = -55.0;  ///< Harvestable RF level at the device.
};

/// protect("meeting_room"): keep RSS in the region below a ceiling.
struct SecurityGoal {
  std::string region_id;
  geom::SampleGrid region{0.0, 1.0, 0.0, 1.0, 0.0, 1, 1};
  double max_leak_dbm = -75.0;
};

using ServiceGoal =
    std::variant<LinkGoal, CoverageGoal, SensingGoal, PowerGoal, SecurityGoal>;

ServiceType service_type_of(const ServiceGoal& goal) noexcept;

// --- Task --------------------------------------------------------------------

struct Task {
  TaskId id = 0;
  ServiceGoal goal;
  Priority priority = kPriorityNormal;
  em::Band band = em::Band::k28GHz;
  TaskState state = TaskState::kPending;
  hal::Micros created_at = 0;
  std::optional<hal::Micros> deadline;  ///< For EDF scheduling.
  std::optional<hal::Micros> expires_at;///< Auto-complete (duration goals).

  /// Most recent achieved metric in the goal's own unit (SNR dB, error m,
  /// power dBm), refreshed by the orchestrator each step.
  std::optional<double> achieved;
  bool goal_met = false;

  /// Causal trace: adopted from the ambient TraceContext at admission (the
  /// broker installs one per intent) or minted from the task id. The
  /// trace_id is deterministic — same call sequence, same id, regardless of
  /// thread count or the SURFOS_TRACE switch.
  telemetry::TraceContext trace;

  ServiceType type() const noexcept { return service_type_of(goal); }
  bool active() const noexcept {
    return state == TaskState::kPending || state == TaskState::kRunning;
  }
};

}  // namespace surfos::orch
