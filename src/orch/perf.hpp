// Service performance models (paper 3.2: "The surface orchestrator uses
// these channel matrices to calculate service performance metrics, such as
// the received signal strength and estimated sensing or localization
// accuracy"). All metrics are computed from *realized* configurations —
// after granularity and quantization projection — so reported numbers match
// what the hardware actually does, not what the optimizer imagined.
#pragma once

#include <vector>

#include "em/propagation.hpp"
#include "sim/channel.hpp"
#include "surface/config.hpp"

namespace surfos::orch {

struct LinkMetrics {
  double rss_dbm = -300.0;
  double snr_db = -300.0;
  double capacity_mbps = 0.0;
};

struct CoverageMetrics {
  double median_snr_db = -300.0;
  double mean_capacity_mbps = 0.0;
  std::vector<double> snr_db;  ///< Per probe point.
};

struct SensingMetrics {
  double median_error_m = 1e9;
  std::vector<double> errors_m;  ///< Per probe point.
};

struct PowerMetrics {
  double delivered_dbm = -300.0;
};

LinkMetrics link_metrics(const sim::SceneChannel& channel,
                         const em::LinkBudget& budget,
                         std::span<const surface::SurfaceConfig> configs,
                         std::size_t rx_index);

CoverageMetrics coverage_metrics(const sim::SceneChannel& channel,
                                 const em::LinkBudget& budget,
                                 std::span<const surface::SurfaceConfig> configs,
                                 const std::vector<std::size_t>& rx_indices);

/// Localization accuracy through `sensing_panel` with the realized configs:
/// beamscan AoA per probe point -> position error (accurate-ToF model).
SensingMetrics sensing_metrics(const sim::SceneChannel& channel,
                               std::span<const surface::SurfaceConfig> configs,
                               std::size_t sensing_panel,
                               const std::vector<std::size_t>& rx_indices,
                               std::size_t spectrum_bins = 121);

PowerMetrics power_metrics(const sim::SceneChannel& channel,
                           const em::LinkBudget& budget,
                           std::span<const surface::SurfaceConfig> configs,
                           std::size_t rx_index);

}  // namespace surfos::orch
