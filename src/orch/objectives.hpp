// Service objectives: the losses the orchestrator's optimizer minimizes
// (paper 4: coverage loss = negative sum of link capacity across locations;
// localization loss = cross-entropy between estimated and true AoA; the
// multitasking loss is their sum). All gradients are analytic, chained
// through SceneChannel partials and PanelVariables' control mapping.
#pragma once

#include <memory>
#include <vector>

#include "opt/objective.hpp"
#include "orch/variables.hpp"
#include "sense/aoa.hpp"
#include "sim/channel.hpp"

namespace surfos::sim {
class ChannelEvalCache;
class DigestMemo;
}  // namespace surfos::sim

namespace surfos::orch {

/// Spectral-efficiency objective over a set of RX probe points:
///   L = -sign * (1/M) * sum_j log2(1 + rho * |h_j|^2)
/// sign=+1 maximizes capacity (coverage/connectivity); sign=-1 *minimizes*
/// it (security: suppress leakage into a region).
class CapacityObjective final : public opt::Objective {
 public:
  /// `rho` converts channel power gain |h|^2 to linear SNR
  /// (tx power / noise power, both linear).
  CapacityObjective(const sim::SceneChannel* channel,
                    const PanelVariables* variables,
                    std::vector<std::size_t> rx_indices, double rho,
                    double sign = 1.0);
  ~CapacityObjective() override;

  std::size_t dimension() const override;
  /// Digest-memoized (SURFOS_EVAL_CACHE): repeated evaluations of the same
  /// x — optimizer restarts, measure() re-sweeps — return the stored value
  /// byte-identically.
  double value(std::span<const double> x) const override;
  double value_and_gradient(std::span<const double> x,
                            std::span<double> gradient) const override;
  /// Analytic: the known base value adds nothing, delegate to the full pass.
  void gradient_at(std::span<const double> x, double base_value,
                   std::span<double> gradient) const override;
  /// Rank-1 incremental probe through ChannelEvalCache (SURFOS_INCREMENTAL):
  /// a single-coordinate move re-evaluates each RX in O(1) off the cached
  /// linear response instead of re-sweeping every element and cascade.
  double value_delta(std::span<const double> base, double base_value,
                     std::size_t coord, double coord_value) const override;
  /// Evaluation only reads the immutable channel/variables structure; the
  /// incremental cache synchronizes internally.
  bool thread_safe() const override { return true; }

  /// Incremental-evaluation statistics (rebases / rx fills / delta evals and
  /// the value memo counters) for tests and benches.
  const sim::ChannelEvalCache& eval_cache() const noexcept { return *cache_; }

 private:
  const sim::SceneChannel* channel_;
  const PanelVariables* variables_;
  std::vector<std::size_t> rx_indices_;
  double rho_;
  double sign_;
  std::vector<double> panel_loss_;
  mutable std::unique_ptr<sim::ChannelEvalCache> cache_;
};

/// Received-power objective for wireless charging:
///   L = -(1/M) * sum_j |h_j|^2 / p0
/// `p0` is a normalization power gain so the loss is O(1) (use the best
/// single-point focus power).
class PowerDeliveryObjective final : public opt::Objective {
 public:
  PowerDeliveryObjective(const sim::SceneChannel* channel,
                         const PanelVariables* variables,
                         std::vector<std::size_t> rx_indices, double p0);
  ~PowerDeliveryObjective() override;

  std::size_t dimension() const override;
  /// Digest-memoized, like CapacityObjective::value.
  double value(std::span<const double> x) const override;
  double value_and_gradient(std::span<const double> x,
                            std::span<double> gradient) const override;
  /// Analytic: the known base value adds nothing, delegate to the full pass.
  void gradient_at(std::span<const double> x, double base_value,
                   std::span<double> gradient) const override;
  /// Rank-1 incremental probe, like CapacityObjective::value_delta.
  double value_delta(std::span<const double> base, double base_value,
                     std::size_t coord, double coord_value) const override;
  /// Evaluation only reads the immutable channel/variables structure; the
  /// incremental cache synchronizes internally.
  bool thread_safe() const override { return true; }

  const sim::ChannelEvalCache& eval_cache() const noexcept { return *cache_; }

 private:
  const sim::SceneChannel* channel_;
  const PanelVariables* variables_;
  std::vector<std::size_t> rx_indices_;
  double p0_;
  std::vector<double> panel_loss_;
  mutable std::unique_ptr<sim::ChannelEvalCache> cache_;
};

/// Localization objective: mean cross-entropy between each probe location's
/// beamscan spectrum (through the sensing panel's current coefficients) and
/// its true-AoA target distribution.
class LocalizationObjective final : public opt::Objective {
 public:
  /// `sensing_panel` indexes into variables->panels(); probe locations are
  /// channel RX indices.
  LocalizationObjective(const sim::SceneChannel* channel,
                        const PanelVariables* variables,
                        std::size_t sensing_panel,
                        std::vector<std::size_t> rx_indices,
                        std::size_t spectrum_bins = 121);
  ~LocalizationObjective() override;

  std::size_t dimension() const override;
  /// Digest-memoized (the beamscan spectrum is nonlinear in the sensing
  /// panel's coefficients, so there is no rank-1 path — only full-value
  /// memoization applies).
  double value(std::span<const double> x) const override;
  double value_and_gradient(std::span<const double> x,
                            std::span<double> gradient) const override;
  /// Analytic: the known base value adds nothing, delegate to the full pass.
  void gradient_at(std::span<const double> x, double base_value,
                   std::span<double> gradient) const override;
  /// Evaluation only reads the immutable channel/model structure.
  bool thread_safe() const override { return true; }

  const sense::AoaSensingModel& sensing_model() const noexcept {
    return *model_;
  }

 private:
  const sim::SceneChannel* channel_;
  const PanelVariables* variables_;
  std::size_t sensing_panel_;
  std::vector<std::size_t> rx_indices_;
  std::unique_ptr<sense::AoaSensingModel> model_;
  std::vector<std::vector<double>> targets_;  ///< Per probe location.
  /// Sensing-panel -> probe-RX vectors, materialized once from the channel's
  /// SoA planes (rx_vector returns by value since the SoA refactor).
  std::vector<em::CVec> g_cache_;
  mutable std::unique_ptr<sim::DigestMemo> memo_;
};

}  // namespace surfos::orch
