#include "orch/orchestrator.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace surfos::orch {

namespace {
constexpr const char* kLog = "orchestrator";
}

// --- TaskHandle ----------------------------------------------------------------

bool TaskHandle::valid() const noexcept {
  return orchestrator_ != nullptr && orchestrator_->find_task(id_) != nullptr;
}

const Task& TaskHandle::task() const {
  const Task* task =
      orchestrator_ == nullptr ? nullptr : orchestrator_->find_task(id_);
  if (task == nullptr) {
    throw std::invalid_argument("TaskHandle: invalid handle for task " +
                                std::to_string(id_));
  }
  return *task;
}

TaskState TaskHandle::status() const { return task().state; }

bool TaskHandle::goal_met() const { return task().goal_met; }

std::optional<double> TaskHandle::last_metric() const {
  return task().achieved;
}

telemetry::TraceContext TaskHandle::trace() const { return task().trace; }

Orchestrator::Orchestrator(hal::DeviceRegistry* registry, hal::SimClock* clock,
                           OrchestratorContext context,
                           OrchestratorOptions options)
    : registry_(registry),
      clock_(clock),
      context_(std::move(context)),
      options_(options),
      scheduler_(options.policy),
      optimizer_(std::make_unique<opt::GradientDescent>()) {
  if (registry_ == nullptr || clock_ == nullptr) {
    throw std::invalid_argument("Orchestrator: null registry or clock");
  }
  if (context_.environment == nullptr) {
    throw std::invalid_argument("Orchestrator: null environment");
  }
}

// --- Service API --------------------------------------------------------------

TaskId Orchestrator::admit(ServiceGoal goal, Priority priority,
                           std::optional<double> duration_s,
                           std::optional<em::Band> band) {
  Task task;
  task.id = next_task_id_++;
  task.goal = std::move(goal);
  task.priority = priority;
  task.band = band.value_or(context_.default_band);
  task.created_at = clock_->now();
  if (duration_s) {
    task.expires_at = clock_->now() + static_cast<hal::Micros>(
                                          *duration_s * hal::kMicrosPerSecond);
  }
  // Adopt the caller's causal trace (the broker installs one per intent);
  // direct service-API calls mint a task-id-derived trace instead. Either
  // way the id is deterministic and independent of the SURFOS_TRACE switch.
  const telemetry::TraceContext& ambient = telemetry::current_trace();
  task.trace = ambient.valid()
                   ? ambient
                   : telemetry::TraceContext{
                         telemetry::make_trace_id(
                             telemetry::trace_domain("orch.task"), task.id),
                         0};
  SURFOS_INFO(kLog) << "admit task " << task.id << " ("
                    << to_string(task.type()) << ", prio " << priority << ")";
  SURFOS_COUNT("orch.tasks.admitted");
  const TaskId id = task.id;
  tasks_.emplace(id, std::move(task));
  return id;
}

TaskHandle Orchestrator::enhance_link(LinkGoal goal, Priority priority,
                                      std::optional<em::Band> band) {
  return {this, admit(std::move(goal), priority, std::nullopt, band)};
}

TaskHandle Orchestrator::optimize_coverage(CoverageGoal goal, Priority priority,
                                           std::optional<em::Band> band) {
  return {this, admit(std::move(goal), priority, std::nullopt, band)};
}

TaskHandle Orchestrator::enable_sensing(SensingGoal goal, Priority priority,
                                        std::optional<em::Band> band) {
  const double duration = goal.duration_s;
  return {this, admit(std::move(goal), priority, duration, band)};
}

TaskHandle Orchestrator::init_powering(PowerGoal goal, Priority priority,
                                       std::optional<em::Band> band) {
  const double duration = goal.duration_s;
  return {this, admit(std::move(goal), priority, duration, band)};
}

TaskHandle Orchestrator::protect(SecurityGoal goal, Priority priority,
                                 std::optional<em::Band> band) {
  return {this, admit(std::move(goal), priority, std::nullopt, band)};
}

// --- Task lifecycle -------------------------------------------------------------

Result<void> Orchestrator::set_task_idle(TaskId id, bool idle) {
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "unknown task: " + std::to_string(id));
  }
  Task& task = it->second;
  if (idle && task.active()) {
    task.state = TaskState::kIdle;
  } else if (!idle && task.state == TaskState::kIdle) {
    task.state = TaskState::kPending;
  }
  return ok_result();
}

void Orchestrator::cancel_task(TaskId id) {
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  it->second.state = TaskState::kCompleted;
}

const Task* Orchestrator::find_task(TaskId id) const noexcept {
  const auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

std::vector<const Task*> Orchestrator::tasks() const {
  std::vector<const Task*> out;
  out.reserve(tasks_.size());
  for (const auto& [id, task] : tasks_) out.push_back(&task);
  return out;
}

void Orchestrator::notify_environment_changed() {
  ++env_revision_;
  SURFOS_COUNT("orch.env.changes");
  SURFOS_INFO(kLog) << "environment changed (revision " << env_revision_ << ")";
}

void Orchestrator::set_environment(const sim::Environment* environment) {
  if (environment == nullptr) {
    throw std::invalid_argument("Orchestrator: null environment");
  }
  context_.environment = environment;
  // Cached plans hold SceneChannels built against the old environment
  // object; drop them rather than risk dangling geometry pointers.
  plans_.clear();
  notify_environment_changed();
}

void Orchestrator::set_optimizer(std::unique_ptr<opt::Optimizer> optimizer) {
  if (!optimizer) throw std::invalid_argument("Orchestrator: null optimizer");
  optimizer_ = std::move(optimizer);
  // Optimizer choice invalidates cached optimizations.
  for (auto& [key, plan] : plans_) plan.optimized = false;
}

// --- Planning helpers -----------------------------------------------------------

std::vector<geom::Vec3> Orchestrator::probe_points(const Task& task,
                                                   bool& ok) const {
  ok = true;
  struct Visitor {
    const hal::DeviceRegistry& registry;
    bool& ok;
    std::vector<geom::Vec3> operator()(const LinkGoal& g) const {
      return endpoint(g.endpoint_id);
    }
    std::vector<geom::Vec3> operator()(const PowerGoal& g) const {
      return endpoint(g.endpoint_id);
    }
    std::vector<geom::Vec3> operator()(const CoverageGoal& g) const {
      return g.region.points();
    }
    std::vector<geom::Vec3> operator()(const SensingGoal& g) const {
      return g.region.points();
    }
    std::vector<geom::Vec3> operator()(const SecurityGoal& g) const {
      return g.region.points();
    }
    std::vector<geom::Vec3> endpoint(const std::string& id) const {
      const auto* e = registry.find_endpoint(id);
      if (e == nullptr) {
        ok = false;
        return {};
      }
      return {e->position};
    }
  };
  return std::visit(Visitor{*registry_, ok}, task.goal);
}

std::string Orchestrator::signature_of(const Assignment& assignment) const {
  // Deliberately excludes the task set: a plan is keyed by its physical
  // resources (band, slot, devices), so task churn lands on the same plan
  // and its channel can be rebased in O(changed endpoints) (plan_for).
  std::ostringstream oss;
  oss << static_cast<int>(assignment.band) << "|slot" << assignment.slot << "|";
  for (const auto& device : assignment.devices) oss << device << ",";
  return oss.str();
}

std::string Orchestrator::tasks_signature(const Assignment& assignment) const {
  std::ostringstream oss;
  for (const TaskId id : assignment.tasks) oss << id << ",";
  return oss.str();
}

void Orchestrator::collect_task_rx(const Assignment& assignment, Plan& plan,
                                   std::vector<geom::Vec3>& rx_points) {
  for (const TaskId id : assignment.tasks) {
    const Task& task = tasks_.at(id);
    bool ok = true;
    const auto points = probe_points(task, ok);
    if (!ok || points.empty()) {
      tasks_.at(id).state = TaskState::kFailed;
      continue;
    }
    std::vector<std::size_t> indices(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      indices[i] = rx_points.size() + i;
    }
    plan.task_rx[id] = std::move(indices);
    rx_points.insert(rx_points.end(), points.begin(), points.end());
  }
}

void Orchestrator::pick_sensing_panels(const Assignment& assignment,
                                       Plan& plan) const {
  // Pick each sensing task's aperture: the panel with the strongest mean
  // element response over the task's probe points.
  for (const TaskId id : assignment.tasks) {
    const auto rx_it = plan.task_rx.find(id);
    if (rx_it == plan.task_rx.end()) continue;
    if (tasks_.at(id).type() != ServiceType::kSensing) continue;
    std::size_t best_panel = 0;
    double best_power = -1.0;
    for (std::size_t p = 0; p < plan.panels.size(); ++p) {
      double power = 0.0;
      for (const std::size_t j : rx_it->second) {
        power += em::power(plan.channel->rx_vector(p, j));
      }
      if (power > best_power) {
        best_power = power;
        best_panel = p;
      }
    }
    plan.sensing_panel_of[id] = best_panel;
  }
}

Orchestrator::Plan& Orchestrator::plan_for(const Assignment& assignment,
                                           bool& fresh) {
  const std::string key = signature_of(assignment);
  const std::string tasks_sig = tasks_signature(assignment);
  const auto it = plans_.find(key);
  if (it != plans_.end() && it->second.env_revision == env_revision_) {
    if (it->second.tasks_sig == tasks_sig) {
      fresh = false;
      return it->second;
    }
    // Same resources, different task set: rebase the live channel's RX rows
    // instead of rebuilding the whole plan. Surviving endpoints keep their
    // rows; only new ones are traced (SceneChannel::rebase_rx). The result
    // is indistinguishable from a fresh build — same RX order, cleared
    // warm start — at O(changed endpoints) cost.
    Plan& plan = it->second;
    if (plan.channel != nullptr) {
      plan.task_rx.clear();
      plan.sensing_panel_of.clear();
      std::vector<geom::Vec3> rx_points;
      collect_task_rx(assignment, plan, rx_points);
      if (!rx_points.empty()) {
        SURFOS_COUNT("orch.plan.rebased");
        plan.channel->rebase_rx(std::move(rx_points));
        pick_sensing_panels(assignment, plan);
        plan.x.clear();
        plan.optimized = false;
        plan.last_loss = 0.0;
        plan.tasks_sig = tasks_sig;
        fresh = true;
        return plan;
      }
    }
    // Parked plan, or every task now fails: fall through to a full rebuild.
  }
  fresh = true;
  Plan plan;
  plan.env_revision = env_revision_;
  plan.tasks_sig = tasks_sig;

  for (const auto& device : assignment.devices) {
    const auto* driver = registry_->find_surface(device);
    if (driver == nullptr) {
      throw std::logic_error("Orchestrator: scheduled unknown device " + device);
    }
    plan.panels.push_back(&driver->panel());
  }

  std::vector<geom::Vec3> rx_points;
  collect_task_rx(assignment, plan, rx_points);
  if (rx_points.empty()) {
    // Every task in the assignment failed; park an empty plan.
    plans_[key] = std::move(plan);
    return plans_[key];
  }

  plan.channel = std::make_unique<sim::SceneChannel>(
      context_.environment, em::band_center(assignment.band), context_.ap,
      plan.panels, std::move(rx_points), nullptr, context_.channel_options);
  plan.variables = std::make_unique<PanelVariables>(plan.panels);

  pick_sensing_panels(assignment, plan);

  plans_[key] = std::move(plan);
  return plans_[key];
}

std::vector<std::vector<double>> Orchestrator::initial_candidates(
    const Assignment& assignment, Plan& plan) const {
  // Warm-start from what the hardware already stores in this slot when the
  // slot is no longer the all-zero default.
  std::vector<surface::SurfaceConfig> stored;
  bool all_zero = true;
  for (std::size_t i = 0; i < assignment.devices.size(); ++i) {
    const auto* driver = registry_->find_surface(assignment.devices[i]);
    const auto& config = driver->stored_config(assignment.slot);
    const surface::SurfaceConfig zero(config.size());
    if (config.max_phase_delta(zero) > 1e-9) all_zero = false;
    stored.push_back(config);
  }
  if (!all_zero) return {plan.variables->from_configs(stored)};

  // Centroid of all probe points as the final focus target.
  geom::Vec3 target{};
  std::size_t count = 0;
  for (const auto& [id, indices] : plan.task_rx) {
    for (const std::size_t j : indices) {
      target += plan.channel->rx_point(j);
      ++count;
    }
  }
  if (count > 0) target = target / static_cast<double>(count);
  const double frequency = em::band_center(assignment.band);

  std::vector<std::vector<double>> candidates;

  // Candidate 1: relay chain — panel k focuses the previous stage's source
  // onto the next panel (or the target for the last panel), ordered by
  // distance from the AP. Best when surfaces cascade around blockage.
  {
    std::vector<std::size_t> order(plan.panels.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return plan.panels[a]->center().distance_to(context_.ap.position) <
             plan.panels[b]->center().distance_to(context_.ap.position);
    });
    std::vector<surface::SurfaceConfig> init(plan.panels.size(),
                                             surface::SurfaceConfig{});
    geom::Vec3 source = context_.ap.position;
    for (std::size_t k = 0; k < order.size(); ++k) {
      const auto& panel = *plan.panels[order[k]];
      const geom::Vec3 next_target = (k + 1 < order.size())
                                         ? plan.panels[order[k + 1]]->center()
                                         : target;
      init[order[k]] = panel.focus_config(source, next_target, frequency);
      source = panel.center();
    }
    candidates.push_back(plan.variables->from_configs(init));
  }

  // Candidate 2: every panel independently focuses the AP onto the target.
  // Best when each surface has its own usable AP->target route.
  if (plan.panels.size() > 1) {
    std::vector<surface::SurfaceConfig> init;
    init.reserve(plan.panels.size());
    for (const auto* panel : plan.panels) {
      init.push_back(panel->focus_config(context_.ap.position, target,
                                         frequency));
    }
    candidates.push_back(plan.variables->from_configs(init));
  }
  return candidates;
}

// --- Optimization / actuation / measurement ------------------------------------

std::size_t Orchestrator::optimize_plan(const Assignment& assignment,
                                        Plan& plan) {
  const double rho = context_.budget.snr(1.0);  // linear SNR per unit |h|^2

  std::vector<std::unique_ptr<opt::Objective>> terms;
  opt::WeightedSumObjective joint;
  // The warm-start point and its coefficients normalize the power terms
  // (security leak level, powering focus power); computed lazily once and
  // shared across tasks instead of re-deriving candidates per power term.
  std::vector<double> x0_norm;
  std::vector<em::CVec> x0_coefficients;
  const auto p0_at_start = [&](const std::vector<std::size_t>& rx) {
    if (x0_coefficients.empty()) {
      x0_norm = initial_candidates(assignment, plan).front();
      x0_coefficients = plan.variables->coefficients(x0_norm);
    }
    double p0 = 0.0;
    for (const std::size_t j : rx) {
      p0 += std::norm(plan.channel->evaluate(j, x0_coefficients));
    }
    return std::max(p0 / static_cast<double>(rx.size()), 1e-30);
  };
  for (std::size_t k = 0; k < assignment.tasks.size(); ++k) {
    const TaskId id = assignment.tasks[k];
    const auto rx_it = plan.task_rx.find(id);
    if (rx_it == plan.task_rx.end()) continue;
    const Task& task = tasks_.at(id);
    const double weight = assignment.weights[k];
    switch (task.type()) {
      case ServiceType::kConnectivity:
      case ServiceType::kCoverage:
        terms.push_back(std::make_unique<CapacityObjective>(
            plan.channel.get(), plan.variables.get(), rx_it->second, rho, 1.0));
        break;
      case ServiceType::kSecurity: {
        // Suppress *linear* received power (not log capacity): the linear
        // mean is dominated by the worst leaks, which is exactly what a
        // protection ceiling cares about. Negative weight turns the
        // power-delivery objective into power suppression; p0 normalizes it
        // to the pre-optimization leak level.
        const double p0 = p0_at_start(rx_it->second);
        terms.push_back(std::make_unique<PowerDeliveryObjective>(
            plan.channel.get(), plan.variables.get(), rx_it->second, p0));
        joint.add_term(terms.back().get(), -weight);
        continue;  // weight already applied (negated)
      }
      case ServiceType::kSensing:
        terms.push_back(std::make_unique<LocalizationObjective>(
            plan.channel.get(), plan.variables.get(),
            plan.sensing_panel_of.at(id), rx_it->second,
            options_.sensing_bins));
        break;
      case ServiceType::kPowering: {
        // Normalize by the focus-init power at the device so the loss is O(1).
        const double p0 = p0_at_start(rx_it->second);
        terms.push_back(std::make_unique<PowerDeliveryObjective>(
            plan.channel.get(), plan.variables.get(), rx_it->second, p0));
        break;
      }
    }
    joint.add_term(terms.back().get(), weight);
  }
  if (terms.empty()) return 0;

  const std::vector<std::vector<double>> starts =
      plan.x.empty() ? initial_candidates(assignment, plan)
                     : std::vector<std::vector<double>>{plan.x};
  opt::OptimizeResult best;
  bool have_best = false;
  std::size_t evaluations = 0;
  for (const auto& x0 : starts) {
    opt::OptimizeResult result = optimizer_->minimize(joint, x0);
    evaluations += result.evaluations;
    if (!have_best || result.value < best.value) {
      best = std::move(result);
      have_best = true;
    }
  }
  plan.x = best.x;
  plan.last_loss = best.value;
  plan.optimized = true;
  SURFOS_COUNT("orch.optimizations");
  SURFOS_COUNT_N("opt.objective.evaluations", evaluations);
  SURFOS_INFO(kLog) << "optimized assignment (" << assignment.tasks.size()
                    << " tasks, " << starts.size() << " start(s)): loss "
                    << best.value << " after " << best.evaluations
                    << " evaluations";
  return evaluations;
}

void Orchestrator::stage_actuate(const Assignment& assignment, const Plan& plan,
                                 hal::WriteCombiner& combiner) {
  if (plan.x.empty()) return;
  const auto realized = plan.variables->realize(plan.x);
  for (std::size_t i = 0; i < assignment.devices.size(); ++i) {
    auto* driver = registry_->find_surface(assignment.devices[i]);
    combiner.stage(*driver, assignment.slot, realized[i], /*activate=*/true);
  }
}

std::vector<surface::SurfaceConfig> Orchestrator::hardware_configs(
    const Assignment& assignment, const Plan&) const {
  std::vector<surface::SurfaceConfig> configs;
  for (const auto& device : assignment.devices) {
    const auto* driver = registry_->find_surface(device);
    configs.push_back(driver->stored_config(assignment.slot));
  }
  return configs;
}

void Orchestrator::measure(const Assignment& assignment, Plan& plan,
                           StepReport& report) {
  if (!plan.channel) return;
  const auto configs = hardware_configs(assignment, plan);
  for (const TaskId id : assignment.tasks) {
    const auto rx_it = plan.task_rx.find(id);
    if (rx_it == plan.task_rx.end()) continue;
    Task& task = tasks_.at(id);
    if (!task.active()) continue;
    task.state = TaskState::kRunning;
    struct Visitor {
      const sim::SceneChannel& channel;
      const em::LinkBudget& budget;
      const std::vector<surface::SurfaceConfig>& configs;
      const std::vector<std::size_t>& rx;
      const Plan& plan;
      TaskId id;
      double operator()(const LinkGoal& g, bool& met) const {
        const auto m = link_metrics(channel, budget, configs, rx.front());
        met = m.snr_db >= g.target_snr_db;
        return m.snr_db;
      }
      double operator()(const CoverageGoal& g, bool& met) const {
        const auto m = coverage_metrics(channel, budget, configs, rx);
        met = m.median_snr_db >= g.target_median_snr_db;
        return m.median_snr_db;
      }
      double operator()(const SensingGoal& g, bool& met) const {
        const auto m = sensing_metrics(
            channel, configs, plan.sensing_panel_of.at(id), rx);
        met = m.median_error_m <= g.target_accuracy_m;
        return m.median_error_m;
      }
      double operator()(const PowerGoal& g, bool& met) const {
        const auto m = power_metrics(channel, budget, configs, rx.front());
        met = m.delivered_dbm >= g.min_power_dbm;
        return m.delivered_dbm;
      }
      double operator()(const SecurityGoal& g, bool& met) const {
        const auto m = coverage_metrics(channel, budget, configs, rx);
        double worst = -300.0;
        for (const double snr : m.snr_db) {
          worst = std::max(worst, snr + budget.noise_dbm());  // RSS dBm
        }
        met = worst <= g.max_leak_dbm;
        return worst;
      }
    };
    bool met = false;
    Visitor visitor{*plan.channel, context_.budget, configs, rx_it->second,
                    plan, id};
    task.achieved = std::visit(
        [&](const auto& goal) { return visitor(goal, met); }, task.goal);
    task.goal_met = met;
    report.tasks.push_back(
        {task.id, task.type(), task.state, task.achieved, task.goal_met});
  }
}

StepReport Orchestrator::step() {
  StepReport report;
  telemetry::TraceSpan step_span("orch.step");
  SURFOS_COUNT("orch.steps");

  // Expire duration-bound tasks.
  for (auto& [id, task] : tasks_) {
    if (task.active() && task.expires_at && clock_->now() >= *task.expires_at) {
      task.state = TaskState::kCompleted;
    }
  }

  std::vector<const Task*> active;
  for (const auto& [id, task] : tasks_) {
    if (task.active()) active.push_back(&task);
  }
  if (active.empty()) return report;

  Schedule schedule;
  {
    telemetry::TraceSpan span("orch.step.schedule");
    schedule = scheduler_.build(active, *registry_);
    report.trace.schedule_us = span.elapsed_us();
  }
  report.assignment_count = schedule.assignments.size();
  report.starved = schedule.starved;
  SURFOS_COUNT_N("orch.tasks.starved", schedule.starved.size());
  for (const TaskId id : schedule.starved) {
    tasks_.at(id).state = TaskState::kFailed;
    SURFOS_WARN(kLog) << "task " << id << " starved: no capable surface";
  }

  // The step is one control epoch: every assignment stages its writes into
  // the epoch's write-combining buffer, the buffer flushes once (at most one
  // control transaction per dirty (device, slot)), the clock rides out the
  // slowest control path once, and only then do the measure passes read the
  // realized hardware state. Measuring after the single flush keeps the
  // measured state identical to the old write-then-measure-per-assignment
  // loop whenever assignments touch disjoint devices (the scheduler's normal
  // regime: one assignment per band over that band's surfaces).
  hal::WriteCombiner combiner;
  struct Staged {
    const Assignment* assignment = nullptr;
    Plan* plan = nullptr;
    telemetry::TraceContext trace;
  };
  std::vector<Staged> staged;
  staged.reserve(schedule.assignments.size());

  for (const Assignment& assignment : schedule.assignments) {
    // The assignment runs under its primary task's trace (the first task the
    // orchestrator still knows about), so every span and driver write below
    // carries the originating intent's trace id.
    telemetry::TraceContext assignment_trace;
    for (const TaskId id : assignment.tasks) {
      if (const Task* task = find_task(id)) {
        assignment_trace = {task->trace.trace_id, 0};
        break;
      }
    }
    telemetry::TraceScope trace_scope(assignment_trace);
    report.trace.trace_ids.push_back(assignment_trace.trace_id);
    for (const TaskId id : assignment.tasks) {
      if (const Task* task = find_task(id)) {
        report.trace.task_trace_ids.push_back(task->trace.trace_id);
      }
    }
    SURFOS_TRACE_INSTANT("orch.schedule.assign");

    bool fresh = false;
    Plan& plan = plan_for(assignment, fresh);
    if (fresh) {
      ++report.trace.plans_fresh;
      SURFOS_COUNT("orch.plan.fresh");
    } else {
      ++report.trace.plans_reused;
      SURFOS_COUNT("orch.plan.reused");
    }
    if (!plan.channel) continue;
    if (fresh || !plan.optimized || options_.always_reoptimize) {
      {
        telemetry::TraceSpan span("orch.step.optimize");
        report.trace.objective_evaluations += optimize_plan(assignment, plan);
        report.trace.optimize_us += span.elapsed_us();
      }
      {
        telemetry::TraceSpan span("orch.step.actuate");
        stage_actuate(assignment, plan, combiner);
        report.trace.actuate_us += span.elapsed_us();
      }
      ++report.optimizations_run;
    }
    staged.push_back({&assignment, &plan, assignment_trace});
  }

  if (!combiner.empty()) {
    telemetry::TraceSpan span("orch.step.flush", combiner.staged());
    const hal::FlushStats stats = combiner.flush(options_.hal_write_mode);
    report.trace.config_writes += stats.transactions;
    report.trace.element_updates += stats.element_updates;
    report.trace.writes_staged += stats.writes_staged;
    report.trace.writes_coalesced += stats.writes_coalesced;
    report.trace.writes_elided += stats.writes_elided;
    if (stats.transactions + stats.selects > 0) {
      // Wait out the slowest control path once per epoch, then drain links.
      clock_->advance(stats.worst_delay_us + 1);
      registry_->poll_all();
    }
    report.trace.actuate_us += span.elapsed_us();
  }

  for (const Staged& entry : staged) {
    telemetry::TraceScope trace_scope(entry.trace);
    telemetry::TraceSpan span("orch.step.measure");
    measure(*entry.assignment, *entry.plan, report);
    report.trace.measure_us += span.elapsed_us();
  }
  report.trace.total_us = step_span.elapsed_us();
  return report;
}

std::optional<surface::SurfaceConfig> Orchestrator::last_realized(
    const std::string& device_id) const {
  const auto* driver = registry_->find_surface(device_id);
  if (driver == nullptr) return std::nullopt;
  return driver->active_config();
}

}  // namespace surfos::orch
