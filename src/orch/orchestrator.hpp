// The surface orchestrator: SurfOS's central control plane (paper 3.2).
//
// Exposes the environment-wide service APIs — enhance_link(),
// optimize_coverage(), enable_sensing(), init_powering(), protect() — each
// creating a Task. step() then: (1) schedules active tasks onto slices of
// time/frequency/space, (2) jointly optimizes surface configurations per
// slice against the channel model, (3) actuates the configurations through
// the hardware manager's drivers (write_config/select_config over control
// links), and (4) measures achieved service metrics from the *hardware's*
// realized state, not the optimizer's intent.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "em/propagation.hpp"
#include "hal/batch.hpp"
#include "hal/registry.hpp"
#include "opt/optimizer.hpp"
#include "orch/objectives.hpp"
#include "orch/perf.hpp"
#include "orch/scheduler.hpp"
#include "orch/task.hpp"
#include "orch/variables.hpp"
#include "sim/channel.hpp"
#include "sim/environment.hpp"

namespace surfos::orch {

struct OrchestratorContext {
  const sim::Environment* environment = nullptr;
  sim::TxSpec ap;  ///< The serving AP/base station this control plane models.
  em::Band default_band = em::Band::k28GHz;
  em::LinkBudget budget;
  sim::ChannelOptions channel_options;
};

struct OrchestratorOptions {
  SchedulePolicy policy = SchedulePolicy::kPriorityJoint;
  std::size_t sensing_bins = 121;
  /// Re-run optimization every step even when nothing changed (for ablations;
  /// normally plans are reused until tasks or the environment change).
  bool always_reoptimize = false;
  /// HAL write path for the actuate stage: kBatched coalesces every staged
  /// per-device write into one control transaction per (device, slot) per
  /// step (control epoch); kPerElement is the naive one-transaction-per-
  /// changed-element baseline. Defaults from SURFOS_HAL_BATCH (on).
  hal::HalWriteMode hal_write_mode = hal::hal_write_mode_from_env();
};

struct TaskReport {
  TaskId id = 0;
  ServiceType type = ServiceType::kConnectivity;
  TaskState state = TaskState::kPending;
  std::optional<double> achieved;
  bool goal_met = false;
};

/// Per-step control-cycle trace (telemetry). The counts are deterministic
/// and always filled; the `*_us` wall-clock timings are only measured while
/// telemetry is enabled and stay 0.0 under SURFOS_TELEMETRY=off, so a
/// disabled-mode StepReport carries no run-to-run-varying state.
struct StepTrace {
  double schedule_us = 0.0;
  double optimize_us = 0.0;
  double actuate_us = 0.0;
  double measure_us = 0.0;
  double total_us = 0.0;
  std::size_t plans_fresh = 0;      ///< Plans (re)built this step.
  std::size_t plans_reused = 0;     ///< Cache hits: channel/optimum reused.
  std::size_t objective_evaluations = 0;  ///< Optimizer loss evaluations.
  std::size_t config_writes = 0;    ///< Config-write transactions issued.
  std::size_t element_updates = 0;  ///< Elements re-coded across those writes.
  std::size_t writes_staged = 0;    ///< Per-device writes staged this epoch.
  std::size_t writes_coalesced = 0;  ///< Staged writes absorbed by later ones.
  std::size_t writes_elided = 0;    ///< Dirty slots already at target state.
  /// Trace id of each assignment processed this step (the primary task's),
  /// in schedule order — the join key between a StepReport and the flight
  /// recorder. Deterministic and identical whether SURFOS_TRACE is on or off.
  std::vector<telemetry::TraceId> trace_ids;
  /// Trace id of *every* scheduled task this step, in schedule order (a
  /// superset of trace_ids, which keeps only each assignment's primary). A
  /// task's id first appears here on the step whose epoch flush applied its
  /// configurations — the admit-to-applied join key the fleet bench uses.
  std::vector<telemetry::TraceId> task_trace_ids;
};

struct StepReport {
  std::size_t assignment_count = 0;
  std::size_t optimizations_run = 0;
  std::vector<TaskId> starved;
  std::vector<TaskReport> tasks;
  StepTrace trace;
};

class Orchestrator;

/// Typed handle returned by the service APIs: the task id plus live status
/// accessors backed by the orchestrator that admitted it. Implicitly
/// converts to TaskId so pre-redesign call sites keep compiling; the handle
/// is only valid while its orchestrator is alive.
class TaskHandle {
 public:
  TaskHandle() = default;
  TaskHandle(Orchestrator* orchestrator, TaskId id) noexcept
      : orchestrator_(orchestrator), id_(id) {}

  TaskId id() const noexcept { return id_; }
  operator TaskId() const noexcept { return id_; }

  /// True when the handle points at a task its orchestrator still knows.
  bool valid() const noexcept;
  /// Live task state. Throws std::invalid_argument on an invalid handle.
  TaskState status() const;
  /// Whether the goal was met at the last measurement. Throws on invalid.
  bool goal_met() const;
  /// Most recent achieved metric in the goal's own unit (SNR dB, error m,
  /// power dBm); nullopt before the first measurement. Throws on invalid.
  std::optional<double> last_metric() const;
  /// The task's causal trace context (intent-derived trace id). Throws on
  /// invalid. Join key into the flight recorder / Chrome trace export.
  telemetry::TraceContext trace() const;

 private:
  const Task& task() const;

  Orchestrator* orchestrator_ = nullptr;
  TaskId id_ = 0;
};

class Orchestrator {
 public:
  /// `registry`, `clock`, and everything in `context` must outlive the
  /// orchestrator.
  Orchestrator(hal::DeviceRegistry* registry, hal::SimClock* clock,
               OrchestratorContext context, OrchestratorOptions options = {});

  // --- Service API (paper Fig 6 function names) ---------------------------
  // `band` overrides the environment's default band for the task — the
  // frequency axis of the scheduler's multiplexing (tasks on different
  // bands get independent slices over their bands' surfaces).

  // Each returns a TaskHandle bound to this orchestrator. The handle
  // implicitly converts to TaskId, so code written against the pre-handle
  // API keeps working unchanged (see DESIGN.md "Telemetry").

  TaskHandle enhance_link(LinkGoal goal,
                          Priority priority = kPriorityInteractive,
                          std::optional<em::Band> band = std::nullopt);
  TaskHandle optimize_coverage(CoverageGoal goal,
                               Priority priority = kPriorityNormal,
                               std::optional<em::Band> band = std::nullopt);
  TaskHandle enable_sensing(SensingGoal goal,
                            Priority priority = kPriorityNormal,
                            std::optional<em::Band> band = std::nullopt);
  TaskHandle init_powering(PowerGoal goal,
                           Priority priority = kPriorityBackground,
                           std::optional<em::Band> band = std::nullopt);
  TaskHandle protect(SecurityGoal goal, Priority priority = kPriorityCritical,
                     std::optional<em::Band> band = std::nullopt);

  // --- Task lifecycle ------------------------------------------------------

  /// Idle tasks stay registered but release their resource slices
  /// ("setting a task idle when not used and releasing resources").
  /// kNotFound on an unknown task id (Result surface; PR 8 API redesign).
  Result<void> set_task_idle(TaskId id, bool idle);
  void cancel_task(TaskId id);
  const Task* find_task(TaskId id) const noexcept;
  std::vector<const Task*> tasks() const;

  /// Environment dynamics (people moving, furniture): invalidates cached
  /// channels and plans so the next step() re-optimizes.
  void notify_environment_changed();

  /// Repoints the control plane at a rebuilt environment (surfosd's dynamic
  /// world replaces the sim::Environment object on every advance) and
  /// invalidates cached plans. `environment` must be non-null and outlive
  /// the orchestrator until the next call.
  void set_environment(const sim::Environment* environment);

  // --- Control knobs -------------------------------------------------------

  void set_optimizer(std::unique_ptr<opt::Optimizer> optimizer);
  const opt::Optimizer& optimizer() const noexcept { return *optimizer_; }
  Scheduler& scheduler() noexcept { return scheduler_; }

  /// One control-plane cycle: schedule -> optimize -> actuate -> measure.
  StepReport step();

  /// The configurations last realized for an assignment's devices (empty if
  /// the device has not been programmed yet).
  std::optional<surface::SurfaceConfig> last_realized(
      const std::string& device_id) const;

  const OrchestratorContext& context() const noexcept { return context_; }

 private:
  struct Plan {
    std::unique_ptr<sim::SceneChannel> channel;
    std::unique_ptr<PanelVariables> variables;
    std::vector<const surface::SurfacePanel*> panels;
    /// Per task: indices into the channel's RX points.
    std::map<TaskId, std::vector<std::size_t>> task_rx;
    std::map<TaskId, std::size_t> sensing_panel_of;  ///< For sensing tasks.
    std::vector<double> x;  ///< Current control phases.
    std::uint64_t env_revision = 0;
    /// Task ids the channel's RX rows were built for. When only this
    /// differs from the incoming assignment, plan_for rebases the channel's
    /// RX set in O(changed endpoints) instead of rebuilding the plan.
    std::string tasks_sig;
    bool optimized = false;
    double last_loss = 0.0;
  };

  TaskId admit(ServiceGoal goal, Priority priority,
               std::optional<double> duration_s,
               std::optional<em::Band> band = std::nullopt);
  std::vector<geom::Vec3> probe_points(const Task& task, bool& ok) const;
  Plan& plan_for(const Assignment& assignment, bool& fresh);
  std::string signature_of(const Assignment& assignment) const;
  std::string tasks_signature(const Assignment& assignment) const;
  /// Fills plan.task_rx (indices into `rx_points`) from the assignment's
  /// tasks, appending each task's probe points; failing tasks are marked
  /// kFailed and skipped.
  void collect_task_rx(const Assignment& assignment, Plan& plan,
                       std::vector<geom::Vec3>& rx_points);
  /// Picks each sensing task's aperture panel from the plan's channel.
  void pick_sensing_panels(const Assignment& assignment, Plan& plan) const;
  /// Returns the number of objective evaluations the optimizer spent.
  std::size_t optimize_plan(const Assignment& assignment, Plan& plan);
  /// Stages the plan's realized configs into the epoch's write-combining
  /// buffer (flushed once per step; see step()).
  void stage_actuate(const Assignment& assignment, const Plan& plan,
                     hal::WriteCombiner& combiner);
  void measure(const Assignment& assignment, Plan& plan, StepReport& report);
  /// Candidate starting points for a fresh plan: the relay-chain focus and
  /// the direct per-panel focus (multi-panel scenes can favor either
  /// structure; the optimizer keeps whichever basin wins).
  std::vector<std::vector<double>> initial_candidates(
      const Assignment& assignment, Plan& plan) const;
  std::vector<surface::SurfaceConfig> hardware_configs(
      const Assignment& assignment, const Plan& plan) const;

  hal::DeviceRegistry* registry_;
  hal::SimClock* clock_;
  OrchestratorContext context_;
  OrchestratorOptions options_;
  Scheduler scheduler_;
  std::unique_ptr<opt::Optimizer> optimizer_;

  std::map<TaskId, Task> tasks_;
  TaskId next_task_id_ = 1;
  std::uint64_t env_revision_ = 1;
  std::map<std::string, Plan> plans_;
};

}  // namespace surfos::orch
