// PanelVariables: the mapping between the optimizer's flat variable vector
// and per-panel element coefficients.
//
// The optimizer works on the *controls* of each panel (element-, column-,
// row-, or globally-shared phases), concatenated across panels. During
// optimization phases stay continuous — quantization is a projection applied
// only when configurations are realized on hardware — so gradients remain
// exact. The chain rule through the control->element replication is a plain
// sum over each control's element group.
#pragma once

#include <span>
#include <vector>

#include "em/cx.hpp"
#include "surface/config.hpp"
#include "surface/panel.hpp"

namespace surfos::orch {

class PanelVariables {
 public:
  /// Panels are non-owning and must outlive this object.
  explicit PanelVariables(std::vector<const surface::SurfacePanel*> panels);

  std::size_t panel_count() const noexcept { return panels_.size(); }
  const surface::SurfacePanel& panel(std::size_t p) const { return *panels_.at(p); }
  const std::vector<const surface::SurfacePanel*>& panels() const noexcept {
    return panels_;
  }

  /// Total optimization dimension (sum of per-panel control counts).
  std::size_t dimension() const noexcept { return dimension_; }

  /// [offset, count) of panel p's controls within the flat vector.
  std::pair<std::size_t, std::size_t> range_of(std::size_t p) const;

  /// Continuous per-element complex coefficients for each panel:
  /// c_e = insertion_loss * exp(j * phase of e's control). No quantization.
  std::vector<em::CVec> coefficients(std::span<const double> x) const;

  /// Scratch-filling variant: writes into `out`, reusing its per-panel
  /// buffers (called once per objective evaluation on the optimizer hot
  /// path).
  void coefficients_into(std::span<const double> x,
                         std::vector<em::CVec>& out) const;

  /// Panel owning flat coordinate `coord`, and the coordinate's panel-local
  /// control index — the (panel, control-group) a rank-1 probe perturbs.
  std::pair<std::size_t, std::size_t> locate(std::size_t coord) const;

  /// Linear insertion-loss magnitude of panel p's coefficients.
  double panel_loss(std::size_t p) const;

  /// Adds each panel's per-element phase gradient into the flat gradient
  /// (summing within shared control groups).
  void reduce_gradient(std::size_t p, std::span<const double> element_grad,
                       std::span<double> x_grad) const;

  /// Hardware-realizable configurations (quantization applied by the panel).
  std::vector<surface::SurfaceConfig> realize(std::span<const double> x) const;

  /// Flat variable vector from existing element-wise configs (projected to
  /// controls via each panel's extract_controls).
  std::vector<double> from_configs(
      std::span<const surface::SurfaceConfig> configs) const;

  /// Control index of element e within panel p (local to that panel's range).
  std::size_t control_of(std::size_t p, std::size_t element) const;

 private:
  std::vector<const surface::SurfacePanel*> panels_;
  std::vector<std::size_t> offsets_;
  std::size_t dimension_ = 0;
};

}  // namespace surfos::orch
