// Task scheduler: decides which tasks share which hardware, when, and how
// (paper 3.2). The minimal resource unit is a slice of time (TDM share),
// frequency (band), and space (surface subset); joint "configuration
// multiplexing" — several tasks sharing one surface configuration, the
// paper's headline multitasking idea — is expressed as a multi-task
// assignment whose objective the orchestrator optimizes jointly.
#pragma once

#include <string>
#include <vector>

#include "hal/registry.hpp"
#include "orch/task.hpp"

namespace surfos::orch {

enum class SchedulePolicy {
  kPriorityJoint,   ///< One joint config per band, tasks weighted by priority.
  kRoundRobinTdm,   ///< Equal time slices, one config slot per task.
  kEarliestDeadline,///< TDM with shares decaying by deadline order.
  kSpatialPartition,///< Each task gets the surface(s) nearest its target.
};

constexpr const char* to_string(SchedulePolicy p) noexcept {
  switch (p) {
    case SchedulePolicy::kPriorityJoint: return "priority-joint";
    case SchedulePolicy::kRoundRobinTdm: return "round-robin-tdm";
    case SchedulePolicy::kEarliestDeadline: return "edf";
    case SchedulePolicy::kSpatialPartition: return "spatial";
  }
  return "?";
}

/// One resource slice and the task(s) multiplexed onto it.
struct Assignment {
  std::vector<TaskId> tasks;
  std::vector<double> weights;      ///< Per-task joint-objective weights.
  em::Band band = em::Band::k28GHz;
  std::vector<std::string> devices; ///< Surface driver ids in the slice.
  double time_share = 1.0;          ///< Fraction of the TDM frame.
  std::uint16_t slot = 0;           ///< Config slot programmed on the devices.
};

struct Schedule {
  std::vector<Assignment> assignments;
  std::vector<TaskId> starved;  ///< No capable hardware on the task's band.
};

/// A task's spatial focus (region center or endpoint position), used by the
/// spatial-partition policy. Returns false when the endpoint is unknown.
bool task_focus(const Task& task, const hal::DeviceRegistry& registry,
                geom::Vec3& out);

class Scheduler {
 public:
  explicit Scheduler(SchedulePolicy policy = SchedulePolicy::kPriorityJoint)
      : policy_(policy) {}

  SchedulePolicy policy() const noexcept { return policy_; }
  void set_policy(SchedulePolicy policy) noexcept { policy_ = policy; }

  /// Builds the schedule for the currently active tasks. Idle/completed
  /// tasks must be filtered out by the caller — they hold no resources.
  Schedule build(const std::vector<const Task*>& active,
                 hal::DeviceRegistry& registry) const;

 private:
  Schedule build_priority_joint(const std::vector<const Task*>& tasks,
                                hal::DeviceRegistry& registry) const;
  Schedule build_tdm(const std::vector<const Task*>& tasks,
                     hal::DeviceRegistry& registry, bool edf) const;
  Schedule build_spatial(const std::vector<const Task*>& tasks,
                         hal::DeviceRegistry& registry) const;

  SchedulePolicy policy_;
};

}  // namespace surfos::orch
