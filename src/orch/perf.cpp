#include "orch/perf.hpp"

#include <cmath>

#include "sense/aoa.hpp"
#include "sense/localize.hpp"
#include "sense/steering.hpp"
#include "util/stats.hpp"

namespace surfos::orch {

LinkMetrics link_metrics(const sim::SceneChannel& channel,
                         const em::LinkBudget& budget,
                         std::span<const surface::SurfaceConfig> configs,
                         std::size_t rx_index) {
  // powers_at digests (config, rx) and memoizes, so the per-step measure()
  // sweeps over unchanged hardware configs become cache hits.
  const std::size_t indices[1] = {rx_index};
  const double power = channel.powers_at(indices, configs).front();
  LinkMetrics metrics;
  metrics.rss_dbm = budget.rss_dbm(power);
  metrics.snr_db = budget.snr_db(power);
  metrics.capacity_mbps = budget.capacity(power) / 1e6;
  return metrics;
}

CoverageMetrics coverage_metrics(const sim::SceneChannel& channel,
                                 const em::LinkBudget& budget,
                                 std::span<const surface::SurfaceConfig> configs,
                                 const std::vector<std::size_t>& rx_indices) {
  const auto powers = channel.powers_at(rx_indices, configs);
  CoverageMetrics metrics;
  metrics.snr_db.reserve(rx_indices.size());
  double capacity_sum = 0.0;
  for (const double power : powers) {
    metrics.snr_db.push_back(budget.snr_db(power));
    capacity_sum += budget.capacity(power);
  }
  metrics.median_snr_db = util::median(metrics.snr_db);
  metrics.mean_capacity_mbps =
      capacity_sum / (1e6 * static_cast<double>(rx_indices.size()));
  return metrics;
}

SensingMetrics sensing_metrics(const sim::SceneChannel& channel,
                               std::span<const surface::SurfaceConfig> configs,
                               std::size_t sensing_panel,
                               const std::vector<std::size_t>& rx_indices,
                               std::size_t spectrum_bins) {
  thread_local std::vector<em::CVec> coefficients;
  channel.coefficients_for(configs, coefficients);
  const auto& panel = channel.panel(sensing_panel);
  const sense::AoaSensingModel model(&panel, channel.frequency_hz(),
                                     spectrum_bins);
  SensingMetrics metrics;
  metrics.errors_m.reserve(rx_indices.size());
  em::CVec v(panel.element_count());
  for (std::size_t j : rx_indices) {
    const em::CVec& g = channel.rx_vector(sensing_panel, j);
    const em::CVec& c = coefficients[sensing_panel];
    for (std::size_t e = 0; e < v.size(); ++e) v[e] = c[e] * g[e];
    const double azimuth = model.estimate_azimuth(v);
    metrics.errors_m.push_back(
        sense::localization_error(panel, channel.rx_point(j), azimuth));
  }
  metrics.median_error_m = util::median(metrics.errors_m);
  return metrics;
}

PowerMetrics power_metrics(const sim::SceneChannel& channel,
                           const em::LinkBudget& budget,
                           std::span<const surface::SurfaceConfig> configs,
                           std::size_t rx_index) {
  const std::size_t indices[1] = {rx_index};
  const double power = channel.powers_at(indices, configs).front();
  return PowerMetrics{budget.rss_dbm(power)};
}

}  // namespace surfos::orch
