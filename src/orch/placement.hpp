// Deployment automation (paper Section 5): "Deployment automation involves
// running the simulator to model the environment and optimize for placement
// as part of the surface hardware configurations."
//
// Given a set of candidate wall mounts, the planner evaluates each by
// building a prototype panel there and measuring the coverage it could
// deliver (per-location ideal steering — an upper bound that is cheap to
// compute and ranks mounts correctly), then returns the ranked candidates.
// A greedy multi-surface variant places k surfaces by repeatedly taking the
// mount that most improves the worst-covered locations.
#pragma once

#include <string>
#include <vector>

#include "em/antenna.hpp"
#include "em/propagation.hpp"
#include "geom/frame.hpp"
#include "geom/grid.hpp"
#include "sim/channel.hpp"
#include "sim/environment.hpp"
#include "surface/panel.hpp"

namespace surfos::orch {

struct MountCandidate {
  std::string label;
  geom::Frame pose;
};

/// Candidate mounts spaced along the inside of a rectangular room's walls at
/// height z, normals pointing into the room.
std::vector<MountCandidate> wall_mounts(double x0, double x1, double y0,
                                        double y1, double z,
                                        double spacing_m = 1.0);

struct CandidateScore {
  std::size_t index = 0;          ///< Into the candidates vector.
  double median_snr_db = -300.0;  ///< Per-location ideal-steering median.
  double p10_snr_db = -300.0;     ///< 10th percentile (coverage tail).
};

struct PlacementPlan {
  std::vector<CandidateScore> ranking;   ///< Best first.
  std::vector<std::size_t> selected;     ///< Greedy multi-surface choice.
  double selected_median_snr_db = -300.0;
};

struct PlacementOptions {
  std::size_t rows = 16;
  std::size_t cols = 16;
  surface::ElementDesign element;         ///< spacing 0 -> half wavelength.
  surface::OperationMode op_mode = surface::OperationMode::kReflective;
  std::size_t surfaces_to_place = 1;
};

/// Rank candidate mounts and greedily select `surfaces_to_place` of them.
/// The score of a joint selection is the median over grid locations of the
/// best single-surface steered SNR at that location (each client is served
/// by its best surface — the SDM upper bound).
PlacementPlan plan_placement(const sim::Environment& environment,
                             const sim::TxSpec& ap, em::Band band,
                             const em::LinkBudget& budget,
                             const std::vector<MountCandidate>& candidates,
                             const geom::SampleGrid& region,
                             const PlacementOptions& options = {});

}  // namespace surfos::orch
