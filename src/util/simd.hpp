// Lane-width-agnostic SIMD kernel layer for the dense channel math.
//
// Every backend (scalar, AVX2, AVX-512, NEON) implements the same virtual
// lane width of kWidth = 8 doubles and the same horizontal-reduction tree,
// so all backends produce BIT-IDENTICAL results for every kernel: the
// scalar backend is the reference implementation and the vector backends
// must agree with it exactly (enforced by tests/test_simd.cpp). To keep
// that guarantee the backend translation units are compiled with
// -ffp-contract=off (no FMA contraction) and the scalar TU additionally
// with -fno-tree-vectorize so it stays genuinely scalar for benchmarking.
//
// Backend selection: runtime dispatch picks the best backend the CPU
// supports (avx512 > avx2 > neon > scalar); the SURFOS_SIMD environment
// knob (auto|scalar|avx2|avx512|neon) overrides it, falling back down the
// preference order when the requested backend is unavailable.
//
// Kernels come in two shapes:
//  - "plane" kernels take arbitrary length n over SoA double planes
//    (unaligned pointers are allowed; alignment is a performance hint);
//  - "block" kernels operate on exactly kWidth lanes (the batched ray
//    tracer processes receivers in blocks of 8).
// Lane masks stored in memory use the convention 0.0 = false and an
// all-ones bit pattern = true; kernels only ever test/blend/bitwise-op
// mask values, never do arithmetic on them.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace surfos::util::simd {

/// Virtual lane width shared by all backends (doubles per block).
inline constexpr std::size_t kWidth = 8;

enum class Backend { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

/// 64-byte aligned allocator for SoA planes.
template <class T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};
  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }
  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

using AlignedVec = std::vector<double, AlignedAllocator<double>>;

/// Per-(material, frequency) slab constants consumed by the Fresnel
/// kernels: complex relative permittivity and k0 * thickness.
struct SlabConsts {
  double eps_re = 1.0;
  double eps_im = 0.0;
  double k0t = 0.0;
};

/// Finite rectangular plane (a Reflector) for the backward-clip kernel.
struct PlaneRect {
  double ox, oy, oz;      // origin (center)
  double nx, ny, nz;      // unit normal
  double ux, uy, uz;      // in-plane u axis (unit)
  double vx, vy, vz;      // in-plane v axis (unit)
  double half_u, half_v;  // half extents along u/v
};

/// Scene triangles grouped as coplanar pairs (Environment geometry is
/// built from add_quad/add_box, which emit two consecutive coplanar
/// triangles per quad sharing plane and material). The transmission
/// kernel ORs the two hit masks per pair and applies the slab response
/// once, which reproduces the quad-diagonal dedup of
/// Mesh::all_hits_on_segment.
struct TriPairs {
  std::size_t pair_count = 0;
  // Per-triangle (length 2 * pair_count): vertex 0 and the two edges.
  std::vector<double> v0x, v0y, v0z;
  std::vector<double> e1x, e1y, e1z;
  std::vector<double> e2x, e2y, e2z;
  // Per-pair: shared unit normal, material id, and slab constants at the
  // trace frequency. `mat` feeds the cross-pair coincident-hit dedup: a
  // segment through a shared edge of two same-material quads is one
  // physical crossing (Mesh::all_hits_on_segment collapses |dt| < 1e-9
  // same-material hits globally, not just within a quad).
  std::vector<double> nx, ny, nz;
  std::vector<int> mat;
  std::vector<SlabConsts> slab;
};

/// Backend kernel table. All pointers are non-null in a valid table.
/// "Plane" kernels take a length n; "block" kernels process exactly
/// kWidth lanes. No pointer aliasing between distinct arguments unless a
/// parameter is documented as in/out.
struct Ops {
  const char* name;
  Backend backend;

  // --- elementwise transcendentals (plane) --------------------------------
  // s[i] = sin(x[i]), c[i] = cos(x[i]). Accurate for |x| up to ~1e6
  // (Cody-Waite two-term pi/2 reduction); scene phases are k*d ~ 1e4.
  void (*sincos)(const double* x, double* s, double* c, std::size_t n);
  // out[i] = exp(x[i]); underflows to +0 below -708.396, overflows to +inf
  // above 709.783 (matches the metal-slab decay underflow of std::exp).
  void (*exp)(const double* x, double* out, std::size_t n);
  // out[i] = (amp ? amp[i] : 1) * scale * e^{j phase[i]}.
  void (*polar)(const double* amp, double scale, const double* phase,
                double* out_re, double* out_im, std::size_t n);

  // --- complex plane arithmetic (plane) -----------------------------------
  // o = a * b (complex, elementwise).
  void (*cmul)(const double* ar, const double* ai, const double* br,
               const double* bi, double* o_re, double* o_im, std::size_t n);
  // o += a * b.
  void (*cmul_accum)(const double* ar, const double* ai, const double* br,
                     const double* bi, double* o_re, double* o_im,
                     std::size_t n);
  // a *= (sre + j sim), in place.
  void (*cscale)(double* ar, double* ai, double sre, double sim,
                 std::size_t n);
  // a *= w (real plane), in place.
  void (*rscale_mul)(double* ar, double* ai, const double* w, std::size_t n);
  // out = sum_i (a[i] * b[i]) * c[i]  (canonical product order: a*b first).
  void (*cdot3)(const double* ar, const double* ai, const double* br,
                const double* bi, const double* cr, const double* ci,
                std::size_t n, double out[2]);
  // w = a * b (or w += a * b when accumulate_w != 0) and
  // out = sum_i (a[i] * b[i]) * c[i] using the freshly computed products,
  // so the sum is bit-identical to cdot3 over the same planes.
  void (*cdot3_partials)(const double* ar, const double* ai, const double* br,
                         const double* bi, const double* cr, const double* ci,
                         double* wr, double* wi, int accumulate_w,
                         std::size_t n, double out[2]);
  // y[r] = sum_c M[r][c] * x[c]; M is row-major with row stride `stride`
  // doubles in each of the re/im planes; x has length >= cols, y >= rows.
  void (*cmatvec)(const double* m_re, const double* m_im, std::size_t rows,
                  std::size_t cols, std::size_t stride, const double* xr,
                  const double* xi, double* yr, double* yi);
  // y[c] = sum_r M[r][c] * x[r] (transpose apply; y accumulated over rows
  // in row order, so each output element keeps a serial accumulation
  // order independent of the backend).
  void (*cmatvec_t)(const double* m_re, const double* m_im, std::size_t rows,
                    std::size_t cols, std::size_t stride, const double* xr,
                    const double* xi, double* yr, double* yi);
  // sum_i (ar[i]^2 + ai[i]^2).
  double (*norm_sum)(const double* ar, const double* ai, std::size_t n);

  // --- geometry / EM kernels ----------------------------------------------
  // d[i] = |b[i]-a[i]|, u[i] = (b[i]-a[i])/d[i] (plane kernel, length n).
  void (*dist_dirs)(const double* ax, const double* ay, const double* az,
                    const double* bx, const double* by, const double* bz,
                    double* d, double* ux, double* uy, double* uz,
                    std::size_t n);
  // Block kernel: clip segment image->target against a finite plane.
  // p = intersection point, mask_io &= (segment crosses plane inside the
  // rectangle). Mirrors Reflector::segment_plane_point.
  void (*plane_clip)(const PlaneRect* pl, double img_x, double img_y,
                     double img_z, const double* tx, const double* ty,
                     const double* tz, double* px, double* py, double* pz,
                     double* mask_io);
  // Block kernel: product of slab transmission coefficients over all
  // scene triangles crossed by segment from->to, excluding hits within
  // excl_radius of the n_excl exclusion points (laid out point-major:
  // ex[e * kWidth + lane]). Writes the complex product per lane.
  void (*seg_transmission)(const TriPairs* tris, const double* fx,
                           const double* fy, const double* fz,
                           const double* tx, const double* ty,
                           const double* tz, const double* ex,
                           const double* ey, const double* ez,
                           std::size_t n_excl, double excl_radius,
                           double* t_re, double* t_im);
  // Slab reflection / transmission coefficient planes from cos(incidence).
  void (*fresnel_reflect)(const SlabConsts* slab, const double* cos_i,
                          double* o_re, double* o_im, std::size_t n);
  void (*fresnel_transmit)(const SlabConsts* slab, const double* cos_i,
                           double* o_re, double* o_im, std::size_t n);
  // Block kernel: g *= (lam_over_4pi / L) * e^{-j k L}.
  void (*freespace_mul)(double lam_over_4pi, double k, const double* L,
                        double* g_re, double* g_im);
  // Block kernel: h += mask ? g * w : 0 (w real).
  void (*masked_accum)(const double* mask, const double* g_re,
                       const double* g_im, const double* w, double* h_re,
                       double* h_im);
  // Block kernel: mask_io &= (ar^2 + ai^2 >= thresh).
  void (*mask_norm_ge)(const double* ar, const double* ai, double thresh,
                       double* mask_io);
  // Plane kernel: element -> point hop gain.
  // d = |q - p[i]|; cos = |(q-p[i]) . n| / d;
  // hop = sqrt(area * cos) / (sqrt4pi * d) * e^{-j k d};
  // u[i] = (q - p[i]) / d. Lanes with d < 1e-6 get hop = 0, u = 0.
  void (*hop_gain)(const double* px, const double* py, const double* pz,
                   double qx, double qy, double qz, double nx, double ny,
                   double nz, double k, double area, double sqrt4pi,
                   double* hop_re, double* hop_im, double* ux, double* uy,
                   double* uz, std::size_t n);
  // Plane kernel: element -> element gain row (one destination element q
  // against all source elements p[i]):
  // amp = sqrt(area_p * cos_p) * sqrt(area_q * cos_q) / (lambda * d);
  // out = amp * e^{-j k d}; zero when either cos <= 0 or d < 1e-6.
  void (*pair_gain)(const double* px, const double* py, const double* pz,
                    double qx, double qy, double qz, double npx, double npy,
                    double npz, double nqx, double nqy, double nqz, double k,
                    double lambda, double area_p, double area_q, double* o_re,
                    double* o_im, std::size_t n);
  // Plane kernel: sector antenna amplitude over unit directions.
  // out[i] = (sign * (b . u[i]) >= cos_half) ? peak_amp : side_amp.
  void (*sector_gain)(double bx, double by, double bz, double sign,
                      double cos_half, double peak_amp, double side_amp,
                      const double* ux, const double* uy, const double* uz,
                      double* out, std::size_t n);
};

/// Active kernel table. First use resolves SURFOS_SIMD and CPU features.
const Ops& ops();

/// Table for a specific backend, or nullptr if unavailable on this host
/// (e.g. kNeon on x86). kScalar is always available.
const Ops* ops_for(Backend b);

/// Test/bench hook: force a backend for subsequent ops() calls. Returns
/// false (and leaves the active backend unchanged) if unavailable.
bool set_backend(Backend b);

/// Re-resolve from SURFOS_SIMD + CPU detection (undoes set_backend).
void reset_backend();

Backend active_backend();
const char* backend_name(Backend b);
std::vector<Backend> available_backends();

}  // namespace surfos::util::simd
