// Aligned ASCII table printer.
//
// Every bench binary regenerates one of the paper's tables/figures as rows of
// text; this printer keeps their output uniform and diff-friendly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace surfos::util {

/// Column-aligned text table. Cells are strings; numeric formatting is the
/// caller's choice (use util::format).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with a header rule and two-space column gaps.
  void print(std::ostream& os) const;

  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace surfos::util
