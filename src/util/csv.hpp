// CSV emission for experiment series (Figure 4/5 data points), so results can
// be re-plotted outside this repository.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace surfos::util {

/// Writes rows of doubles with a header line. Values are emitted with enough
/// precision to round-trip (%.10g).
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  void add_row(const std::vector<double>& values);

 private:
  std::ostream& os_;
  std::size_t width_;
};

/// Escape a single CSV field (quotes fields containing commas/quotes).
std::string csv_escape(const std::string& field);

}  // namespace surfos::util
