// Pack-templated kernel bodies shared by every SIMD backend TU.
//
// Each backend defines a Pack type (8 doubles wide) and instantiates
// make_ops<Pack>() once. Because every backend runs the SAME kernel code
// at the SAME virtual width with the SAME horizontal-reduction tree, and
// the backend TUs are compiled with -ffp-contract=off, all backends are
// bit-identical; the scalar Pack is the reference implementation.
//
// Pack interface (static members):
//   W (== simd::kWidth), reg, mask
//   load/store (unaligned ok), set1, zero
//   add, sub, mul, div, sqrt_, abs_, neg, min_, max_
//   round_ne (round to nearest-even), floor_, exp2i (2^k for integral k)
//   xor_bits, and_bits, or_bits, andnot_bits (~a & b)
//   cmp_lt/le/gt/ge/eq -> mask; mand, mor; blend(m, a, b) = m ? a : b
//   any(mask); store_mask / load_mask (0.0 false, all-ones-bits true)
//
// Only included by the backend translation units.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "util/simd.hpp"

namespace surfos::util::simd::detail {

// Fixed pairwise reduction tree: identical on every backend regardless of
// how the register is held, because it always goes through memory.
template <class P>
inline double hsum(typename P::reg v) {
  static_assert(P::W == kWidth, "all backends share the virtual width");
  alignas(64) double b[P::W];
  P::store(b, v);
  return ((b[0] + b[1]) + (b[2] + b[3])) + ((b[4] + b[5]) + (b[6] + b[7]));
}

template <class P>
inline typename P::reg copysign_reg(typename P::reg x, typename P::reg y) {
  const typename P::reg sign = P::set1(-0.0);
  return P::or_bits(P::and_bits(y, sign), P::andnot_bits(sign, x));
}

// ---------------------------------------------------------------------------
// sin/cos: Cody-Waite pi/2 reduction + Cephes minimax polynomials on
// [-pi/4, pi/4]. Two-term reduction keeps ~1 ulp up to |x| ~ 1e6; channel
// phases (k * d) stay well below that.
// ---------------------------------------------------------------------------
template <class P>
inline void sincos_reg(typename P::reg x, typename P::reg& s_out,
                       typename P::reg& c_out) {
  using reg = typename P::reg;
  using mask = typename P::mask;
  const reg two_over_pi = P::set1(6.36619772367581382433e-01);
  const reg pio2_1 = P::set1(1.57079632673412561417e+00);
  const reg pio2_1t = P::set1(6.07710050650619224932e-11);

  const reg q = P::round_ne(P::mul(x, two_over_pi));
  // r = (x - q*pio2_1) - q*pio2_1t
  reg r = P::sub(x, P::mul(q, pio2_1));
  r = P::sub(r, P::mul(q, pio2_1t));

  // quadrant = q mod 4, computed in floating point (exact for |q| < 2^52)
  const reg qm = P::sub(q, P::mul(P::set1(4.0), P::floor_(P::mul(q, P::set1(0.25)))));
  const mask is1 = P::cmp_eq(qm, P::set1(1.0));
  const mask is2 = P::cmp_eq(qm, P::set1(2.0));
  const mask is3 = P::cmp_eq(qm, P::set1(3.0));

  const reg z = P::mul(r, r);
  // sin polynomial
  reg sp = P::set1(1.58962301576546568060e-10);
  sp = P::add(P::mul(sp, z), P::set1(-2.50507477628578072866e-8));
  sp = P::add(P::mul(sp, z), P::set1(2.75573136213857245213e-6));
  sp = P::add(P::mul(sp, z), P::set1(-1.98412698295895385996e-4));
  sp = P::add(P::mul(sp, z), P::set1(8.33333333332211858878e-3));
  sp = P::add(P::mul(sp, z), P::set1(-1.66666666666666307295e-1));
  const reg sin_r = P::add(r, P::mul(P::mul(r, z), sp));
  // cos polynomial
  reg cp = P::set1(-1.13585365213876817300e-11);
  cp = P::add(P::mul(cp, z), P::set1(2.08757008419747316778e-9));
  cp = P::add(P::mul(cp, z), P::set1(-2.75573141792967388112e-7));
  cp = P::add(P::mul(cp, z), P::set1(2.48015872888517179954e-5));
  cp = P::add(P::mul(cp, z), P::set1(-1.38888888888730564116e-3));
  cp = P::add(P::mul(cp, z), P::set1(4.16666666666665929218e-2));
  reg cos_r = P::sub(P::set1(1.0), P::mul(z, P::set1(0.5)));
  cos_r = P::add(cos_r, P::mul(P::mul(z, z), cp));

  // Quadrant selection: odd quadrants swap sin/cos; signs per quadrant.
  const mask swap = P::mor(is1, is3);
  reg s = P::blend(swap, cos_r, sin_r);
  reg c = P::blend(swap, sin_r, cos_r);
  const reg neg0 = P::set1(-0.0);
  const reg zero = P::zero();
  const reg ssign = P::blend(P::mor(is2, is3), neg0, zero);
  const reg csign = P::blend(P::mor(is1, is2), neg0, zero);
  s_out = P::xor_bits(s, ssign);
  c_out = P::xor_bits(c, csign);
}

// ---------------------------------------------------------------------------
// exp: Cephes rational approximation. result = 2^k * (1 + 2 px P / (Q - px P))
// Clamped: x < -708.396 -> +0 (matches the metal-slab decay underflow),
// x > 709.782 -> +inf.
// ---------------------------------------------------------------------------
template <class P>
inline typename P::reg exp_reg(typename P::reg x) {
  using reg = typename P::reg;
  const reg log2e = P::set1(1.4426950408889634073599);
  const reg c1 = P::set1(6.93145751953125e-1);
  const reg c2 = P::set1(1.42860682030941723212e-6);

  const reg k = P::round_ne(P::mul(x, log2e));
  reg px = P::sub(x, P::mul(k, c1));
  px = P::sub(px, P::mul(k, c2));
  const reg z = P::mul(px, px);

  reg p = P::set1(1.26177193074810590878e-4);
  p = P::add(P::mul(p, z), P::set1(3.02994407707441961300e-2));
  p = P::add(P::mul(p, z), P::set1(9.99999999999999999910e-1));
  p = P::mul(px, p);

  reg q = P::set1(3.00198505138664455042e-6);
  q = P::add(P::mul(q, z), P::set1(2.52448340349684104192e-3));
  q = P::add(P::mul(q, z), P::set1(2.27265548208155028766e-1));
  q = P::add(P::mul(q, z), P::set1(2.00000000000000000005e0));

  const reg e = P::add(P::set1(1.0), P::div(P::mul(P::set1(2.0), p), P::sub(q, p)));
  reg out = P::mul(e, P::exp2i(k));

  out = P::blend(P::cmp_lt(x, P::set1(-7.08396418532264106224e2)), P::zero(), out);
  out = P::blend(P::cmp_gt(x, P::set1(7.09782712893383996843e2)),
                 P::set1(std::numeric_limits<double>::infinity()), out);
  return out;
}

// Branchless complex sqrt (principal branch), needed by the Fresnel
// kernels: eps - sin^2 has non-positive imaginary part for lossy slabs.
template <class P>
inline void csqrt_reg(typename P::reg re, typename P::reg im,
                      typename P::reg& wr, typename P::reg& wi) {
  using reg = typename P::reg;
  const reg m = P::sqrt_(P::add(P::mul(re, re), P::mul(im, im)));
  const reg t = P::sqrt_(P::mul(P::set1(0.5), P::add(m, P::abs_(re))));
  const reg div = P::div(P::abs_(im), P::add(t, t));
  const auto re_pos = P::cmp_ge(re, P::zero());
  reg r = P::blend(re_pos, t, div);
  reg i = copysign_reg<P>(P::blend(re_pos, div, t), im);
  const auto zero_m = P::cmp_eq(t, P::zero());
  wr = P::blend(zero_m, P::zero(), r);
  wi = P::blend(zero_m, P::zero(), i);
}

// Complex divide with a fixed operation order (no range scaling; the
// Fresnel denominators are well-conditioned).
template <class P>
inline void cdiv_reg(typename P::reg ar, typename P::reg ai, typename P::reg br,
                     typename P::reg bi, typename P::reg& o_re,
                     typename P::reg& o_im) {
  using reg = typename P::reg;
  const reg d = P::add(P::mul(br, br), P::mul(bi, bi));
  o_re = P::div(P::add(P::mul(ar, br), P::mul(ai, bi)), d);
  o_im = P::div(P::sub(P::mul(ai, br), P::mul(ar, bi)), d);
}

// Shared slab response core: TE/TM amplitude coefficients and the
// internal propagation decay for one slab at cos(theta_i) per lane.
template <class P>
struct SlabRegs {
  typename P::reg te_r, te_i, tm_r, tm_i;   // interface coefficients
  typename P::reg dec_r, dec_i;             // exp(-j k0 t sqrt(eps - sin^2))
};

template <class P>
inline SlabRegs<P> slab_core(const SlabConsts* slab, typename P::reg cosi) {
  using reg = typename P::reg;
  SlabRegs<P> out;
  const reg one = P::set1(1.0);
  const reg sin2 = P::sub(one, P::mul(cosi, cosi));
  const reg zr = P::sub(P::set1(slab->eps_re), sin2);
  const reg zi = P::set1(slab->eps_im);
  reg rr, ri;
  csqrt_reg<P>(zr, zi, rr, ri);
  // te = (cos - root) / (cos + root)
  cdiv_reg<P>(P::sub(cosi, rr), P::neg(ri), P::add(cosi, rr), ri, out.te_r,
              out.te_i);
  // tm = (eps cos - root) / (eps cos + root)
  const reg ecr = P::mul(P::set1(slab->eps_re), cosi);
  const reg eci = P::mul(P::set1(slab->eps_im), cosi);
  cdiv_reg<P>(P::sub(ecr, rr), P::sub(eci, ri), P::add(ecr, rr),
              P::add(eci, ri), out.tm_r, out.tm_i);
  // decay = exp(-j k0 t (rr + j ri)) = exp(k0 t ri) * e^{-j k0 t rr}
  const reg k0t = P::set1(slab->k0t);
  const reg mag = exp_reg<P>(P::mul(k0t, ri));  // ri <= 0 for lossy slabs
  reg ph_s, ph_c;
  sincos_reg<P>(P::neg(P::mul(k0t, rr)), ph_s, ph_c);
  out.dec_r = P::mul(mag, ph_c);
  out.dec_i = P::mul(mag, ph_s);
  return out;
}

// out = mag * z / |z| with mag = sqrt(0.5 (|z_te|^2 + |z_tm|^2)), i.e. the
// power-average magnitude carried on the TE phase — the same convention as
// em::reflection_coefficient / transmission_coefficient, without the
// arg/polar round trip. Lanes where |z_te| == 0 produce exactly 0.
template <class P>
inline void avg_mag_on_te_phase(typename P::reg zte_r, typename P::reg zte_i,
                                typename P::reg ztm_r, typename P::reg ztm_i,
                                bool clamp_unit, typename P::reg& o_re,
                                typename P::reg& o_im) {
  using reg = typename P::reg;
  const reg n_te = P::add(P::mul(zte_r, zte_r), P::mul(zte_i, zte_i));
  const reg n_tm = P::add(P::mul(ztm_r, ztm_r), P::mul(ztm_i, ztm_i));
  reg mag = P::sqrt_(P::mul(P::set1(0.5), P::add(n_te, n_tm)));
  if (clamp_unit) mag = P::min_(mag, P::set1(1.0));
  reg scale = P::div(mag, P::sqrt_(n_te));
  scale = P::blend(P::cmp_gt(n_te, P::zero()), scale, P::zero());
  o_re = P::mul(zte_r, scale);
  o_im = P::mul(zte_i, scale);
}

template <class P>
inline void fresnel_transmit_reg(const SlabConsts* slab, typename P::reg cosi,
                                 typename P::reg& o_re, typename P::reg& o_im) {
  using reg = typename P::reg;
  const SlabRegs<P> s = slab_core<P>(slab, cosi);
  const reg one = P::set1(1.0);
  // 1 - te^2, 1 - tm^2
  const reg te2_r = P::sub(P::mul(s.te_r, s.te_r), P::mul(s.te_i, s.te_i));
  const reg te2_i = P::add(P::mul(s.te_r, s.te_i), P::mul(s.te_i, s.te_r));
  const reg tm2_r = P::sub(P::mul(s.tm_r, s.tm_r), P::mul(s.tm_i, s.tm_i));
  const reg tm2_i = P::add(P::mul(s.tm_r, s.tm_i), P::mul(s.tm_i, s.tm_r));
  const reg a_r = P::sub(one, te2_r), a_i = P::neg(te2_i);
  const reg b_r = P::sub(one, tm2_r), b_i = P::neg(tm2_i);
  // t_te = (1 - te^2) * decay, t_tm = (1 - tm^2) * decay
  const reg tte_r = P::sub(P::mul(a_r, s.dec_r), P::mul(a_i, s.dec_i));
  const reg tte_i = P::add(P::mul(a_r, s.dec_i), P::mul(a_i, s.dec_r));
  const reg ttm_r = P::sub(P::mul(b_r, s.dec_r), P::mul(b_i, s.dec_i));
  const reg ttm_i = P::add(P::mul(b_r, s.dec_i), P::mul(b_i, s.dec_r));
  avg_mag_on_te_phase<P>(tte_r, tte_i, ttm_r, ttm_i, /*clamp_unit=*/true, o_re,
                         o_im);
}

template <class P>
inline void fresnel_reflect_reg(const SlabConsts* slab, typename P::reg cosi,
                                typename P::reg& o_re, typename P::reg& o_im) {
  const SlabRegs<P> s = slab_core<P>(slab, cosi);
  avg_mag_on_te_phase<P>(s.te_r, s.te_i, s.tm_r, s.tm_i, /*clamp_unit=*/false,
                         o_re, o_im);
}

// ---------------------------------------------------------------------------
// Plane-kernel loop helpers: full blocks load directly; the tail is staged
// through a zero-padded stack buffer (zero padding is harmless for every
// kernel here, including the reductions where 0-products add +0).
// ---------------------------------------------------------------------------
struct TailBuf {
  alignas(64) double v[kWidth];
  const double* stage(const double* p, std::size_t r) {
    for (std::size_t l = 0; l < kWidth; ++l) v[l] = l < r ? p[l] : 0.0;
    return v;
  }
};

inline void tail_store(double* dst, const double* src, std::size_t r) {
  for (std::size_t l = 0; l < r; ++l) dst[l] = src[l];
}

// ---------------------------------------------------------------------------
// Kernel table entries
// ---------------------------------------------------------------------------
template <class P>
struct Kernels {
  using reg = typename P::reg;
  using mask = typename P::mask;

  static void sincos(const double* x, double* s, double* c, std::size_t n) {
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) {
      reg sr, cr;
      sincos_reg<P>(P::load(x + i), sr, cr);
      P::store(s + i, sr);
      P::store(c + i, cr);
    }
    if (i < n) {
      TailBuf tx;
      alignas(64) double ts[kWidth], tc[kWidth];
      reg sr, cr;
      sincos_reg<P>(P::load(tx.stage(x + i, n - i)), sr, cr);
      P::store(ts, sr);
      P::store(tc, cr);
      tail_store(s + i, ts, n - i);
      tail_store(c + i, tc, n - i);
    }
  }

  static void exp(const double* x, double* out, std::size_t n) {
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth)
      P::store(out + i, exp_reg<P>(P::load(x + i)));
    if (i < n) {
      TailBuf tx;
      alignas(64) double to[kWidth];
      P::store(to, exp_reg<P>(P::load(tx.stage(x + i, n - i))));
      tail_store(out + i, to, n - i);
    }
  }

  static void polar(const double* amp, double scale, const double* phase,
                    double* out_re, double* out_im, std::size_t n) {
    const reg sc = P::set1(scale);
    std::size_t i = 0;
    auto block = [&](const double* ph, const double* am, double* o_re,
                     double* o_im) {
      reg s, c;
      sincos_reg<P>(P::load(ph), s, c);
      reg a = am ? P::mul(P::load(am), sc) : sc;
      P::store(o_re, P::mul(a, c));
      P::store(o_im, P::mul(a, s));
    };
    for (; i + kWidth <= n; i += kWidth)
      block(phase + i, amp ? amp + i : nullptr, out_re + i, out_im + i);
    if (i < n) {
      TailBuf tp, ta;
      alignas(64) double tr[kWidth], ti[kWidth];
      block(tp.stage(phase + i, n - i),
            amp ? ta.stage(amp + i, n - i) : nullptr, tr, ti);
      tail_store(out_re + i, tr, n - i);
      tail_store(out_im + i, ti, n - i);
    }
  }

  static void cmul(const double* ar, const double* ai, const double* br,
                   const double* bi, double* o_re, double* o_im,
                   std::size_t n) {
    cmul_impl(ar, ai, br, bi, o_re, o_im, n, /*accum=*/false);
  }

  static void cmul_accum(const double* ar, const double* ai, const double* br,
                         const double* bi, double* o_re, double* o_im,
                         std::size_t n) {
    cmul_impl(ar, ai, br, bi, o_re, o_im, n, /*accum=*/true);
  }

  static void cmul_impl(const double* ar, const double* ai, const double* br,
                        const double* bi, double* o_re, double* o_im,
                        std::size_t n, bool accum) {
    std::size_t i = 0;
    auto block = [&](const double* pa_r, const double* pa_i, const double* pb_r,
                     const double* pb_i, double* po_r, double* po_i) {
      const reg xr = P::load(pa_r), xi = P::load(pa_i);
      const reg yr = P::load(pb_r), yi = P::load(pb_i);
      reg tr = P::sub(P::mul(xr, yr), P::mul(xi, yi));
      reg ti = P::add(P::mul(xr, yi), P::mul(xi, yr));
      if (accum) {
        tr = P::add(P::load(po_r), tr);
        ti = P::add(P::load(po_i), ti);
      }
      P::store(po_r, tr);
      P::store(po_i, ti);
    };
    for (; i + kWidth <= n; i += kWidth)
      block(ar + i, ai + i, br + i, bi + i, o_re + i, o_im + i);
    for (; i < n; ++i) {
      // Scalar tail with the same expression shape as the block body.
      const double xr = ar[i], xi = ai[i], yr = br[i], yi = bi[i];
      const double tr = xr * yr - xi * yi;
      const double ti = xr * yi + xi * yr;
      o_re[i] = accum ? o_re[i] + tr : tr;
      o_im[i] = accum ? o_im[i] + ti : ti;
    }
  }

  static void cscale(double* ar, double* ai, double sre, double sim,
                     std::size_t n) {
    const reg cr = P::set1(sre), ci = P::set1(sim);
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) {
      const reg xr = P::load(ar + i), xi = P::load(ai + i);
      P::store(ar + i, P::sub(P::mul(xr, cr), P::mul(xi, ci)));
      P::store(ai + i, P::add(P::mul(xr, ci), P::mul(xi, cr)));
    }
    for (; i < n; ++i) {
      const double xr = ar[i], xi = ai[i];
      ar[i] = xr * sre - xi * sim;
      ai[i] = xr * sim + xi * sre;
    }
  }

  static void rscale_mul(double* ar, double* ai, const double* w,
                         std::size_t n) {
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) {
      const reg ww = P::load(w + i);
      P::store(ar + i, P::mul(P::load(ar + i), ww));
      P::store(ai + i, P::mul(P::load(ai + i), ww));
    }
    for (; i < n; ++i) {
      ar[i] *= w[i];
      ai[i] *= w[i];
    }
  }

  // Shared accumulation body for cdot3 and cdot3_partials so the reduced
  // sum is bit-identical whichever entry point computed it.
  template <bool WriteW>
  static void cdot3_body(const double* ar, const double* ai, const double* br,
                         const double* bi, const double* cr, const double* ci,
                         double* wr, double* wi, bool accumulate_w,
                         std::size_t n, double out[2]) {
    reg acc_r = P::zero(), acc_i = P::zero();
    std::size_t i = 0;
    auto block = [&](const double* pa_r, const double* pa_i, const double* pb_r,
                     const double* pb_i, const double* pc_r, const double* pc_i,
                     double* pw_r, double* pw_i) {
      const reg xr = P::load(pa_r), xi = P::load(pa_i);
      const reg yr = P::load(pb_r), yi = P::load(pb_i);
      const reg tr = P::sub(P::mul(xr, yr), P::mul(xi, yi));
      const reg ti = P::add(P::mul(xr, yi), P::mul(xi, yr));
      if constexpr (WriteW) {
        if (accumulate_w) {
          P::store(pw_r, P::add(P::load(pw_r), tr));
          P::store(pw_i, P::add(P::load(pw_i), ti));
        } else {
          P::store(pw_r, tr);
          P::store(pw_i, ti);
        }
      }
      const reg zr = P::load(pc_r), zi = P::load(pc_i);
      acc_r = P::add(acc_r, P::sub(P::mul(tr, zr), P::mul(ti, zi)));
      acc_i = P::add(acc_i, P::add(P::mul(tr, zi), P::mul(ti, zr)));
    };
    for (; i + kWidth <= n; i += kWidth)
      block(ar + i, ai + i, br + i, bi + i, cr + i, ci + i,
            WriteW ? wr + i : nullptr, WriteW ? wi + i : nullptr);
    if (i < n) {
      const std::size_t r = n - i;
      TailBuf tar, tai, tbr, tbi, tcr, tci;
      alignas(64) double twr[kWidth], twi[kWidth];
      if constexpr (WriteW) {
        if (accumulate_w) {
          for (std::size_t l = 0; l < kWidth; ++l) {
            twr[l] = l < r ? wr[i + l] : 0.0;
            twi[l] = l < r ? wi[i + l] : 0.0;
          }
        }
      }
      block(tar.stage(ar + i, r), tai.stage(ai + i, r), tbr.stage(br + i, r),
            tbi.stage(bi + i, r), tcr.stage(cr + i, r), tci.stage(ci + i, r),
            twr, twi);
      if constexpr (WriteW) {
        tail_store(wr + i, twr, r);
        tail_store(wi + i, twi, r);
      }
    }
    out[0] = hsum<P>(acc_r);
    out[1] = hsum<P>(acc_i);
  }

  static void cdot3(const double* ar, const double* ai, const double* br,
                    const double* bi, const double* cr, const double* ci,
                    std::size_t n, double out[2]) {
    cdot3_body<false>(ar, ai, br, bi, cr, ci, nullptr, nullptr, false, n, out);
  }

  static void cdot3_partials(const double* ar, const double* ai,
                             const double* br, const double* bi,
                             const double* cr, const double* ci, double* wr,
                             double* wi, int accumulate_w, std::size_t n,
                             double out[2]) {
    cdot3_body<true>(ar, ai, br, bi, cr, ci, wr, wi, accumulate_w != 0, n, out);
  }

  // y[r] = sum_c M[r][c] x[c] — per-row complex dot with the shared
  // lane-striped accumulator + hsum tree.
  static void cmatvec(const double* m_re, const double* m_im, std::size_t rows,
                      std::size_t cols, std::size_t stride, const double* xr,
                      const double* xi, double* yr, double* yi) {
    for (std::size_t r = 0; r < rows; ++r) {
      const double* row_re = m_re + r * stride;
      const double* row_im = m_im + r * stride;
      reg acc_r = P::zero(), acc_i = P::zero();
      std::size_t c = 0;
      for (; c + kWidth <= cols; c += kWidth) {
        const reg mr = P::load(row_re + c), mi = P::load(row_im + c);
        const reg vr = P::load(xr + c), vi = P::load(xi + c);
        acc_r = P::add(acc_r, P::sub(P::mul(mr, vr), P::mul(mi, vi)));
        acc_i = P::add(acc_i, P::add(P::mul(mr, vi), P::mul(mi, vr)));
      }
      if (c < cols) {
        const std::size_t rem = cols - c;
        TailBuf tmr, tmi, tvr, tvi;
        const reg mr = P::load(tmr.stage(row_re + c, rem));
        const reg mi = P::load(tmi.stage(row_im + c, rem));
        const reg vr = P::load(tvr.stage(xr + c, rem));
        const reg vi = P::load(tvi.stage(xi + c, rem));
        acc_r = P::add(acc_r, P::sub(P::mul(mr, vr), P::mul(mi, vi)));
        acc_i = P::add(acc_i, P::add(P::mul(mr, vi), P::mul(mi, vr)));
      }
      yr[r] = hsum<P>(acc_r);
      yi[r] = hsum<P>(acc_i);
    }
  }

  // y[c] = sum_r M[r][c] x[r] — vectorized over columns; each output
  // element accumulates rows serially in row order.
  static void cmatvec_t(const double* m_re, const double* m_im,
                        std::size_t rows, std::size_t cols, std::size_t stride,
                        const double* xr, const double* xi, double* yr,
                        double* yi) {
    for (std::size_t c = 0; c < cols; ++c) {
      yr[c] = 0.0;
      yi[c] = 0.0;
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double* row_re = m_re + r * stride;
      const double* row_im = m_im + r * stride;
      const reg sr = P::set1(xr[r]), si = P::set1(xi[r]);
      std::size_t c = 0;
      for (; c + kWidth <= cols; c += kWidth) {
        const reg mr = P::load(row_re + c), mi = P::load(row_im + c);
        P::store(yr + c, P::add(P::load(yr + c),
                                P::sub(P::mul(mr, sr), P::mul(mi, si))));
        P::store(yi + c, P::add(P::load(yi + c),
                                P::add(P::mul(mr, si), P::mul(mi, sr))));
      }
      for (; c < cols; ++c) {
        const double mr = row_re[c], mi = row_im[c];
        yr[c] += mr * xr[r] - mi * xi[r];
        yi[c] += mr * xi[r] + mi * xr[r];
      }
    }
  }

  static double norm_sum(const double* ar, const double* ai, std::size_t n) {
    reg acc = P::zero();
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) {
      const reg xr = P::load(ar + i), xi = P::load(ai + i);
      acc = P::add(acc, P::add(P::mul(xr, xr), P::mul(xi, xi)));
    }
    if (i < n) {
      TailBuf tr, ti;
      const reg xr = P::load(tr.stage(ar + i, n - i));
      const reg xi = P::load(ti.stage(ai + i, n - i));
      acc = P::add(acc, P::add(P::mul(xr, xr), P::mul(xi, xi)));
    }
    return hsum<P>(acc);
  }

  static void dist_dirs(const double* ax, const double* ay, const double* az,
                        const double* bx, const double* by, const double* bz,
                        double* d, double* ux, double* uy, double* uz,
                        std::size_t n) {
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) {
      const reg dx = P::sub(P::load(bx + i), P::load(ax + i));
      const reg dy = P::sub(P::load(by + i), P::load(ay + i));
      const reg dz = P::sub(P::load(bz + i), P::load(az + i));
      const reg dd = P::sqrt_(
          P::add(P::add(P::mul(dx, dx), P::mul(dy, dy)), P::mul(dz, dz)));
      P::store(d + i, dd);
      P::store(ux + i, P::div(dx, dd));
      P::store(uy + i, P::div(dy, dd));
      P::store(uz + i, P::div(dz, dd));
    }
    for (; i < n; ++i) {
      const double dx = bx[i] - ax[i], dy = by[i] - ay[i], dz = bz[i] - az[i];
      const double dd = std::sqrt((dx * dx + dy * dy) + dz * dz);
      d[i] = dd;
      ux[i] = dx / dd;
      uy[i] = dy / dd;
      uz[i] = dz / dd;
    }
  }

  static void plane_clip(const PlaneRect* pl, double img_x, double img_y,
                         double img_z, const double* tx, const double* ty,
                         const double* tz, double* px, double* py, double* pz,
                         double* mask_io) {
    // da = (img - o) . n, scalar and backend-independent.
    const double da = (img_x - pl->ox) * pl->nx + (img_y - pl->oy) * pl->ny +
                      (img_z - pl->oz) * pl->nz;
    const reg txr = P::load(tx), tyr = P::load(ty), tzr = P::load(tz);
    const reg db = P::add(
        P::add(P::mul(P::sub(txr, P::set1(pl->ox)), P::set1(pl->nx)),
               P::mul(P::sub(tyr, P::set1(pl->oy)), P::set1(pl->ny))),
        P::mul(P::sub(tzr, P::set1(pl->oz)), P::set1(pl->nz)));
    const reg dar = P::set1(da);
    mask m = P::cmp_lt(P::mul(dar, db), P::zero());
    // t = da / (da - db); p = img + (target - img) * t
    const reg t = P::div(dar, P::sub(dar, db));
    const reg ix = P::set1(img_x), iy = P::set1(img_y), iz = P::set1(img_z);
    const reg hx = P::add(ix, P::mul(P::sub(txr, ix), t));
    const reg hy = P::add(iy, P::mul(P::sub(tyr, iy), t));
    const reg hz = P::add(iz, P::mul(P::sub(tzr, iz), t));
    // in-plane coordinates of p relative to the rectangle center
    const reg rx = P::sub(hx, P::set1(pl->ox));
    const reg ry = P::sub(hy, P::set1(pl->oy));
    const reg rz = P::sub(hz, P::set1(pl->oz));
    const reg lu = P::add(P::add(P::mul(rx, P::set1(pl->ux)),
                                 P::mul(ry, P::set1(pl->uy))),
                          P::mul(rz, P::set1(pl->uz)));
    const reg lv = P::add(P::add(P::mul(rx, P::set1(pl->vx)),
                                 P::mul(ry, P::set1(pl->vy))),
                          P::mul(rz, P::set1(pl->vz)));
    m = P::mand(m, P::cmp_le(P::abs_(lu), P::set1(pl->half_u)));
    m = P::mand(m, P::cmp_le(P::abs_(lv), P::set1(pl->half_v)));
    P::store(px, hx);
    P::store(py, hy);
    P::store(pz, hz);
    P::store_mask(mask_io, P::mand(m, P::load_mask(mask_io)));
  }

  static void seg_transmission(const TriPairs* tris, const double* fx,
                               const double* fy, const double* fz,
                               const double* tx, const double* ty,
                               const double* tz, const double* ex,
                               const double* ey, const double* ez,
                               std::size_t n_excl, double excl_radius,
                               double* t_re, double* t_im) {
    const reg fxr = P::load(fx), fyr = P::load(fy), fzr = P::load(fz);
    const reg dx = P::sub(P::load(tx), fxr);
    const reg dy = P::sub(P::load(ty), fyr);
    const reg dz = P::sub(P::load(tz), fzr);
    const reg len = P::sqrt_(
        P::add(P::add(P::mul(dx, dx), P::mul(dy, dy)), P::mul(dz, dz)));
    const reg one = P::set1(1.0);
    const reg r2 = P::set1(excl_radius * excl_radius);
    reg pr = one, pi = P::zero();
    // Per-lane history of accepted crossings (distance, material) for the
    // cross-pair dedup below. A segment grazing the shared edge of two
    // same-material quads hits both at the same t; the scalar reference
    // (Mesh::all_hits_on_segment) keeps one crossing, so we must too.
    constexpr std::size_t kMaxHist = 16;
    double hist_t[kWidth][kMaxHist];
    int hist_m[kWidth][kMaxHist];
    std::size_t hist_n[kWidth] = {};
    for (std::size_t pair = 0; pair < tris->pair_count; ++pair) {
      mask hitm = P::cmp_lt(one, P::zero());  // all-false
      reg pair_td = P::zero();  // tdist of the accepted crossing, per lane
      for (std::size_t half = 0; half < 2; ++half) {
        const std::size_t tri = 2 * pair + half;
        const reg v0x = P::set1(tris->v0x[tri]), v0y = P::set1(tris->v0y[tri]),
                  v0z = P::set1(tris->v0z[tri]);
        const reg e1x = P::set1(tris->e1x[tri]), e1y = P::set1(tris->e1y[tri]),
                  e1z = P::set1(tris->e1z[tri]);
        const reg e2x = P::set1(tris->e2x[tri]), e2y = P::set1(tris->e2y[tri]),
                  e2z = P::set1(tris->e2z[tri]);
        // Moller-Trumbore with the unnormalized direction d = to - from.
        // The scalar path (geom::Triangle::intersect) uses the unit
        // direction, so its thresholds are scaled by |d| here:
        // det_unit = det / L, t_distance = t_param * L.
        const reg pvx = P::sub(P::mul(dy, e2z), P::mul(dz, e2y));
        const reg pvy = P::sub(P::mul(dz, e2x), P::mul(dx, e2z));
        const reg pvz = P::sub(P::mul(dx, e2y), P::mul(dy, e2x));
        const reg det = P::add(
            P::add(P::mul(e1x, pvx), P::mul(e1y, pvy)), P::mul(e1z, pvz));
        mask m = P::cmp_gt(P::abs_(det), P::mul(P::set1(1e-14), len));
        const reg inv = P::div(one, det);  // masked lanes may be inf/nan
        const reg sx = P::sub(fxr, v0x), sy = P::sub(fyr, v0y),
                  sz = P::sub(fzr, v0z);
        const reg u = P::mul(
            P::add(P::add(P::mul(sx, pvx), P::mul(sy, pvy)), P::mul(sz, pvz)),
            inv);
        m = P::mand(m, P::cmp_ge(u, P::set1(-1e-12)));
        m = P::mand(m, P::cmp_le(u, P::set1(1.0 + 1e-12)));
        const reg qvx = P::sub(P::mul(sy, e1z), P::mul(sz, e1y));
        const reg qvy = P::sub(P::mul(sz, e1x), P::mul(sx, e1z));
        const reg qvz = P::sub(P::mul(sx, e1y), P::mul(sy, e1x));
        const reg v = P::mul(
            P::add(P::add(P::mul(dx, qvx), P::mul(dy, qvy)), P::mul(dz, qvz)),
            inv);
        m = P::mand(m, P::cmp_ge(v, P::set1(-1e-12)));
        m = P::mand(m, P::cmp_le(P::add(u, v), P::set1(1.0 + 1e-12)));
        const reg tpar = P::mul(
            P::add(P::add(P::mul(e2x, qvx), P::mul(e2y, qvy)),
                   P::mul(e2z, qvz)),
            inv);
        const reg tdist = P::mul(tpar, len);
        m = P::mand(m, P::cmp_gt(tdist, P::set1(1e-7)));  // kRayEpsilon
        m = P::mand(m, P::cmp_lt(tdist, P::sub(len, P::set1(1e-7))));
        if (n_excl > 0 && P::any(m)) {
          const reg hx = P::add(fxr, P::mul(dx, tpar));
          const reg hy = P::add(fyr, P::mul(dy, tpar));
          const reg hz = P::add(fzr, P::mul(dz, tpar));
          for (std::size_t e = 0; e < n_excl; ++e) {
            const reg qx = P::sub(hx, P::load(ex + e * kWidth));
            const reg qy = P::sub(hy, P::load(ey + e * kWidth));
            const reg qz = P::sub(hz, P::load(ez + e * kWidth));
            const reg d2 = P::add(P::add(P::mul(qx, qx), P::mul(qy, qy)),
                                  P::mul(qz, qz));
            m = P::mand(m, P::cmp_ge(d2, r2));
          }
        }
        pair_td = P::blend(m, tdist, pair_td);
        hitm = P::mor(hitm, m);
      }
      // Uniform early-out: the mask is identical on every backend, so the
      // skip decision is deterministic and backend-independent.
      if (!P::any(hitm)) continue;
      // Cross-pair dedup against the per-lane hit history, matching the
      // scalar mesh rule: coincident (|dt| < 1e-9) same-material crossings
      // count once. Dropped hits are NOT recorded, reproducing
      // std::unique's compare-against-last-kept behavior. The lane values
      // are bit-identical across backends, so this host-side pass is too.
      {
        alignas(64) double hm[kWidth], td[kWidth];
        P::store_mask(hm, hitm);
        P::store(td, pair_td);
        const int mat = tris->mat[pair];
        bool changed = false;
        for (std::size_t l = 0; l < kWidth; ++l) {
          if (hm[l] == 0.0) continue;
          bool dup = false;
          for (std::size_t h = 0; h < hist_n[l]; ++h) {
            if (hist_m[l][h] == mat && std::fabs(hist_t[l][h] - td[l]) < 1e-9) {
              dup = true;
              break;
            }
          }
          if (dup) {
            hm[l] = 0.0;
            changed = true;
          } else if (hist_n[l] < kMaxHist) {
            hist_t[l][hist_n[l]] = td[l];
            hist_m[l][hist_n[l]] = mat;
            ++hist_n[l];
          }
        }
        if (changed) {
          hitm = P::load_mask(hm);
          if (!P::any(hitm)) continue;
        }
      }
      // cos_i = |d . n| / L for the pair's shared plane normal.
      const reg ndot = P::add(P::add(P::mul(dx, P::set1(tris->nx[pair])),
                                     P::mul(dy, P::set1(tris->ny[pair]))),
                              P::mul(dz, P::set1(tris->nz[pair])));
      const reg cosi = P::min_(one, P::div(P::abs_(ndot), len));
      reg tr, ti;
      fresnel_transmit_reg<P>(&tris->slab[pair], cosi, tr, ti);
      const reg fr = P::blend(hitm, tr, one);
      const reg fi = P::blend(hitm, ti, P::zero());
      const reg npr = P::sub(P::mul(pr, fr), P::mul(pi, fi));
      const reg npi = P::add(P::mul(pr, fi), P::mul(pi, fr));
      pr = npr;
      pi = npi;
    }
    P::store(t_re, pr);
    P::store(t_im, pi);
  }

  static void fresnel_reflect(const SlabConsts* slab, const double* cos_i,
                              double* o_re, double* o_im, std::size_t n) {
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) {
      reg rr, ri;
      fresnel_reflect_reg<P>(slab, P::load(cos_i + i), rr, ri);
      P::store(o_re + i, rr);
      P::store(o_im + i, ri);
    }
    if (i < n) {
      TailBuf tc;
      alignas(64) double tr[kWidth], ti[kWidth];
      reg rr, ri;
      fresnel_reflect_reg<P>(slab, P::load(tc.stage(cos_i + i, n - i)), rr, ri);
      P::store(tr, rr);
      P::store(ti, ri);
      tail_store(o_re + i, tr, n - i);
      tail_store(o_im + i, ti, n - i);
    }
  }

  static void fresnel_transmit(const SlabConsts* slab, const double* cos_i,
                               double* o_re, double* o_im, std::size_t n) {
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) {
      reg rr, ri;
      fresnel_transmit_reg<P>(slab, P::load(cos_i + i), rr, ri);
      P::store(o_re + i, rr);
      P::store(o_im + i, ri);
    }
    if (i < n) {
      TailBuf tc;
      alignas(64) double tr[kWidth], ti[kWidth];
      reg rr, ri;
      fresnel_transmit_reg<P>(slab, P::load(tc.stage(cos_i + i, n - i)), rr,
                              ri);
      P::store(tr, rr);
      P::store(ti, ri);
      tail_store(o_re + i, tr, n - i);
      tail_store(o_im + i, ti, n - i);
    }
  }

  static void freespace_mul(double lam_over_4pi, double k, const double* L,
                            double* g_re, double* g_im) {
    const reg len = P::load(L);
    const reg m = P::div(P::set1(lam_over_4pi), len);
    reg s, c;
    sincos_reg<P>(P::neg(P::mul(P::set1(k), len)), s, c);
    const reg fr = P::mul(m, c), fi = P::mul(m, s);
    const reg gr = P::load(g_re), gi = P::load(g_im);
    P::store(g_re, P::sub(P::mul(gr, fr), P::mul(gi, fi)));
    P::store(g_im, P::add(P::mul(gr, fi), P::mul(gi, fr)));
  }

  static void masked_accum(const double* mask_p, const double* g_re,
                           const double* g_im, const double* w, double* h_re,
                           double* h_im) {
    const mask m = P::load_mask(mask_p);
    const reg ww = P::load(w);
    const reg tr = P::blend(m, P::mul(P::load(g_re), ww), P::zero());
    const reg ti = P::blend(m, P::mul(P::load(g_im), ww), P::zero());
    P::store(h_re, P::add(P::load(h_re), tr));
    P::store(h_im, P::add(P::load(h_im), ti));
  }

  static void mask_norm_ge(const double* ar, const double* ai, double thresh,
                           double* mask_io) {
    const reg xr = P::load(ar), xi = P::load(ai);
    const reg nn = P::add(P::mul(xr, xr), P::mul(xi, xi));
    const mask m = P::cmp_ge(nn, P::set1(thresh));
    P::store_mask(mask_io, P::mand(m, P::load_mask(mask_io)));
  }

  static void hop_gain(const double* px, const double* py, const double* pz,
                       double qx, double qy, double qz, double nx, double ny,
                       double nz, double k, double area, double sqrt4pi,
                       double* hop_re, double* hop_im, double* ux, double* uy,
                       double* uz, std::size_t n) {
    const reg qxr = P::set1(qx), qyr = P::set1(qy), qzr = P::set1(qz);
    const reg nxr = P::set1(nx), nyr = P::set1(ny), nzr = P::set1(nz);
    const reg area_r = P::set1(area), s4p = P::set1(sqrt4pi);
    const reg kneg = P::set1(-k);
    const reg dmin = P::set1(1e-6);
    const reg zero = P::zero();
    std::size_t i = 0;
    auto block = [&](const double* ppx, const double* ppy, const double* ppz,
                     double* ore, double* oim, double* oux, double* ouy,
                     double* ouz) {
      const reg dx = P::sub(qxr, P::load(ppx));
      const reg dy = P::sub(qyr, P::load(ppy));
      const reg dz = P::sub(qzr, P::load(ppz));
      const reg d = P::sqrt_(
          P::add(P::add(P::mul(dx, dx), P::mul(dy, dy)), P::mul(dz, dz)));
      const mask ok = P::cmp_ge(d, dmin);
      const reg cosv = P::div(
          P::abs_(P::add(P::add(P::mul(dx, nxr), P::mul(dy, nyr)),
                         P::mul(dz, nzr))),
          d);
      const reg amp = P::div(P::sqrt_(P::mul(area_r, cosv)), P::mul(s4p, d));
      reg s, c;
      sincos_reg<P>(P::mul(kneg, d), s, c);
      P::store(ore, P::blend(ok, P::mul(amp, c), zero));
      P::store(oim, P::blend(ok, P::mul(amp, s), zero));
      P::store(oux, P::blend(ok, P::div(dx, d), zero));
      P::store(ouy, P::blend(ok, P::div(dy, d), zero));
      P::store(ouz, P::blend(ok, P::div(dz, d), zero));
    };
    for (; i + kWidth <= n; i += kWidth)
      block(px + i, py + i, pz + i, hop_re + i, hop_im + i, ux + i, uy + i,
            uz + i);
    if (i < n) {
      const std::size_t r = n - i;
      TailBuf tpx, tpy, tpz;
      alignas(64) double tre[kWidth], tim[kWidth], tux[kWidth], tuy[kWidth],
          tuz[kWidth];
      // Pad with the first lane's position so padded lanes stay finite.
      auto pad = [&](TailBuf& b, const double* p) {
        for (std::size_t l = 0; l < kWidth; ++l) b.v[l] = p[l < r ? l : 0];
        return b.v;
      };
      block(pad(tpx, px + i), pad(tpy, py + i), pad(tpz, pz + i), tre, tim,
            tux, tuy, tuz);
      tail_store(hop_re + i, tre, r);
      tail_store(hop_im + i, tim, r);
      tail_store(ux + i, tux, r);
      tail_store(uy + i, tuy, r);
      tail_store(uz + i, tuz, r);
    }
  }

  static void pair_gain(const double* px, const double* py, const double* pz,
                        double qx, double qy, double qz, double npx,
                        double npy, double npz, double nqx, double nqy,
                        double nqz, double k, double lambda, double area_p,
                        double area_q, double* o_re, double* o_im,
                        std::size_t n) {
    const reg qxr = P::set1(qx), qyr = P::set1(qy), qzr = P::set1(qz);
    const reg lam = P::set1(lambda);
    const reg ap = P::set1(area_p), aq = P::set1(area_q);
    const reg kneg = P::set1(-k);
    const reg zero = P::zero();
    std::size_t i = 0;
    auto block = [&](const double* ppx, const double* ppy, const double* ppz,
                     double* ore, double* oim) {
      // d points p -> q; cos_p against the p-panel normal, cos_q against
      // the q-panel normal (|.| like Environment::element_cos).
      const reg dx = P::sub(qxr, P::load(ppx));
      const reg dy = P::sub(qyr, P::load(ppy));
      const reg dz = P::sub(qzr, P::load(ppz));
      const reg d = P::sqrt_(
          P::add(P::add(P::mul(dx, dx), P::mul(dy, dy)), P::mul(dz, dz)));
      mask ok = P::cmp_ge(d, P::set1(1e-6));
      const reg cp = P::div(
          P::abs_(P::add(P::add(P::mul(dx, P::set1(npx)),
                                P::mul(dy, P::set1(npy))),
                         P::mul(dz, P::set1(npz)))),
          d);
      const reg cq = P::div(
          P::abs_(P::add(P::add(P::mul(dx, P::set1(nqx)),
                                P::mul(dy, P::set1(nqy))),
                         P::mul(dz, P::set1(nqz)))),
          d);
      ok = P::mand(ok, P::cmp_gt(cp, zero));
      ok = P::mand(ok, P::cmp_gt(cq, zero));
      const reg amp = P::div(
          P::mul(P::sqrt_(P::mul(ap, cp)), P::sqrt_(P::mul(aq, cq))),
          P::mul(lam, d));
      reg s, c;
      sincos_reg<P>(P::mul(kneg, d), s, c);
      P::store(ore, P::blend(ok, P::mul(amp, c), zero));
      P::store(oim, P::blend(ok, P::mul(amp, s), zero));
    };
    for (; i + kWidth <= n; i += kWidth)
      block(px + i, py + i, pz + i, o_re + i, o_im + i);
    if (i < n) {
      const std::size_t r = n - i;
      TailBuf tpx, tpy, tpz;
      alignas(64) double tre[kWidth], tim[kWidth];
      auto pad = [&](TailBuf& b, const double* p) {
        for (std::size_t l = 0; l < kWidth; ++l) b.v[l] = p[l < r ? l : 0];
        return b.v;
      };
      block(pad(tpx, px + i), pad(tpy, py + i), pad(tpz, pz + i), tre, tim);
      tail_store(o_re + i, tre, r);
      tail_store(o_im + i, tim, r);
    }
  }

  static void sector_gain(double bx, double by, double bz, double sign,
                          double cos_half, double peak_amp, double side_amp,
                          const double* ux, const double* uy, const double* uz,
                          double* out, std::size_t n) {
    const reg bxr = P::set1(sign * bx), byr = P::set1(sign * by),
              bzr = P::set1(sign * bz);
    const reg ch = P::set1(cos_half);
    const reg pk = P::set1(peak_amp), sd = P::set1(side_amp);
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) {
      const reg c = P::add(P::add(P::mul(bxr, P::load(ux + i)),
                                  P::mul(byr, P::load(uy + i))),
                           P::mul(bzr, P::load(uz + i)));
      P::store(out + i, P::blend(P::cmp_ge(c, ch), pk, sd));
    }
    for (; i < n; ++i) {
      const double c = (sign * bx) * ux[i] + (sign * by) * uy[i] +
                       (sign * bz) * uz[i];
      out[i] = c >= cos_half ? peak_amp : side_amp;
    }
  }
};

template <class P>
inline Ops make_ops(const char* name, Backend backend) {
  Ops t{};
  t.name = name;
  t.backend = backend;
  t.sincos = &Kernels<P>::sincos;
  t.exp = &Kernels<P>::exp;
  t.polar = &Kernels<P>::polar;
  t.cmul = &Kernels<P>::cmul;
  t.cmul_accum = &Kernels<P>::cmul_accum;
  t.cscale = &Kernels<P>::cscale;
  t.rscale_mul = &Kernels<P>::rscale_mul;
  t.cdot3 = &Kernels<P>::cdot3;
  t.cdot3_partials = &Kernels<P>::cdot3_partials;
  t.cmatvec = &Kernels<P>::cmatvec;
  t.cmatvec_t = &Kernels<P>::cmatvec_t;
  t.norm_sum = &Kernels<P>::norm_sum;
  t.dist_dirs = &Kernels<P>::dist_dirs;
  t.plane_clip = &Kernels<P>::plane_clip;
  t.seg_transmission = &Kernels<P>::seg_transmission;
  t.fresnel_reflect = &Kernels<P>::fresnel_reflect;
  t.fresnel_transmit = &Kernels<P>::fresnel_transmit;
  t.freespace_mul = &Kernels<P>::freespace_mul;
  t.masked_accum = &Kernels<P>::masked_accum;
  t.mask_norm_ge = &Kernels<P>::mask_norm_ge;
  t.hop_gain = &Kernels<P>::hop_gain;
  t.pair_gain = &Kernels<P>::pair_gain;
  t.sector_gain = &Kernels<P>::sector_gain;
  return t;
}

}  // namespace surfos::util::simd::detail
