// Order statistics and empirical CDFs for experiment reporting (the paper
// reports median SNR in Fig 4 and CDFs over locations in Fig 5).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace surfos::util {

/// Linear-interpolated quantile, q in [0, 1]. Throws on empty input.
inline double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

inline double median(std::vector<double> values) {
  return quantile(std::move(values), 0.5);
}

inline double mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("mean: empty input");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

/// Empirical CDF sampled at caller-provided thresholds: fraction of samples
/// <= threshold. Thresholds need not be sorted.
inline std::vector<double> cdf_at(const std::vector<double>& samples,
                                  const std::vector<double>& thresholds) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (double t : thresholds) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), t);
    out.push_back(sorted.empty()
                      ? 0.0
                      : static_cast<double>(it - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return out;
}

/// Full empirical CDF: sorted (value, cumulative fraction) pairs.
struct CdfPoint {
  double value;
  double fraction;
};

inline std::vector<CdfPoint> empirical_cdf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  std::vector<CdfPoint> out;
  out.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out.push_back({samples[i],
                   static_cast<double>(i + 1) / static_cast<double>(samples.size())});
  }
  return out;
}

}  // namespace surfos::util
