// AVX-512 backend: the 8-double virtual lane is exactly one zmm register.
// Compiled with -mavx512f -mavx512dq -ffp-contract=off (DQ supplies the
// pd<->epi64 conversions and andnot_pd; no FMA contraction so results stay
// bit-identical to the scalar reference).
#include "util/simd.hpp"
#include "util/simd_backends.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "util/simd_kernels.hpp"

namespace surfos::util::simd::detail {
namespace {

struct Avx512Pack {
  static constexpr std::size_t W = kWidth;
  using reg = __m512d;
  using mask = __mmask8;

  static reg load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, reg a) { _mm512_storeu_pd(p, a); }
  static reg set1(double x) { return _mm512_set1_pd(x); }
  static reg zero() { return _mm512_setzero_pd(); }

  static reg add(reg a, reg b) { return _mm512_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm512_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm512_mul_pd(a, b); }
  static reg div(reg a, reg b) { return _mm512_div_pd(a, b); }
  static reg sqrt_(reg a) { return _mm512_sqrt_pd(a); }
  static reg abs_(reg a) { return _mm512_abs_pd(a); }
  static reg neg(reg a) { return _mm512_xor_pd(a, _mm512_set1_pd(-0.0)); }
  static reg min_(reg a, reg b) { return _mm512_min_pd(a, b); }
  static reg max_(reg a, reg b) { return _mm512_max_pd(a, b); }
  static reg round_ne(reg a) {
    return _mm512_roundscale_pd(a, _MM_FROUND_TO_NEAREST_INT |
                                       _MM_FROUND_NO_EXC);
  }
  static reg floor_(reg a) {
    return _mm512_roundscale_pd(a, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  }
  static reg exp2i(reg k) {
    __m512i k64 = _mm512_cvtpd_epi64(k);
    k64 = _mm512_add_epi64(k64, _mm512_set1_epi64(1023));
    k64 = _mm512_slli_epi64(k64, 52);
    return _mm512_castsi512_pd(k64);
  }

  static reg xor_bits(reg a, reg b) { return _mm512_xor_pd(a, b); }
  static reg and_bits(reg a, reg b) { return _mm512_and_pd(a, b); }
  static reg or_bits(reg a, reg b) { return _mm512_or_pd(a, b); }
  static reg andnot_bits(reg a, reg b) { return _mm512_andnot_pd(a, b); }

  static mask cmp_lt(reg a, reg b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
  }
  static mask cmp_le(reg a, reg b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_LE_OQ);
  }
  static mask cmp_gt(reg a, reg b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_GT_OQ);
  }
  static mask cmp_ge(reg a, reg b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_GE_OQ);
  }
  static mask cmp_eq(reg a, reg b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_EQ_OQ);
  }
  static mask mand(mask a, mask b) { return a & b; }
  static mask mor(mask a, mask b) { return a | b; }
  static reg blend(mask m, reg a, reg b) {
    // _mm512_mask_blend_pd selects its THIRD operand where the mask is set.
    return _mm512_mask_blend_pd(m, b, a);
  }
  static bool any(mask m) { return m != 0; }
  static void store_mask(double* p, mask m) {
    const reg ones = _mm512_castsi512_pd(_mm512_set1_epi64(-1));
    _mm512_storeu_pd(p, _mm512_maskz_mov_pd(m, ones));
  }
  static mask load_mask(const double* p) {
    const __m512i v = _mm512_castpd_si512(_mm512_loadu_pd(p));
    return _mm512_test_epi64_mask(v, v);
  }
};

const Ops kTable = make_ops<Avx512Pack>("avx512", Backend::kAvx512);

}  // namespace

const Ops* avx512_ops() { return &kTable; }

}  // namespace surfos::util::simd::detail

#else  // non-x86 target: backend cannot exist

namespace surfos::util::simd::detail {
const Ops* avx512_ops() { return nullptr; }
}  // namespace surfos::util::simd::detail

#endif
