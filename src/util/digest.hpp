// Config digests: cheap, high-quality 128-bit fingerprints of the value
// vectors that flow through the optimizer hot path (flat phase variables,
// per-panel complex coefficient vectors, RX index subsets).
//
// The digest is the memoization key for repeated channel/objective
// evaluations (sim::DigestMemo): two independent 64-bit streams — FNV-1a and
// a splitmix64-mixed fold — over the exact bit patterns of the input words.
// Hashing bit patterns (not rounded values) keeps the contract simple: a hit
// can only occur for inputs that took the identical bit-level path, so a
// memoized result is byte-identical to what recomputation would produce.
// With 128 independent bits, an accidental collision across a bounded cache
// (tens of entries) is ~2^-120 per lookup — far below hardware error rates.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace surfos::util {

struct ConfigDigest {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const ConfigDigest&, const ConfigDigest&) = default;
};

namespace detail {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace detail

/// Incremental digest builder: feed 64-bit words, read the running digest.
class DigestBuilder {
 public:
  void add_word(std::uint64_t word) noexcept {
    // FNV-1a over the word's bytes, batched per byte for exact FNV semantics.
    for (int b = 0; b < 8; ++b) {
      lo_ = (lo_ ^ ((word >> (8 * b)) & 0xffu)) * detail::kFnvPrime;
    }
    hi_ = detail::splitmix64(hi_ ^ word);
  }

  void add_double(double value) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    add_word(bits);
  }

  void add_size(std::size_t value) noexcept {
    add_word(static_cast<std::uint64_t>(value));
  }

  ConfigDigest digest() const noexcept { return {lo_, hi_}; }

 private:
  std::uint64_t lo_ = detail::kFnvOffset;
  std::uint64_t hi_ = 0x6a09e667f3bcc908ull;  // sqrt(2) fractional bits
};

/// Digest of a flat double vector (optimizer variables, power vectors).
inline ConfigDigest digest_values(std::span<const double> values) noexcept {
  DigestBuilder builder;
  builder.add_size(values.size());
  for (const double v : values) builder.add_double(v);
  return builder.digest();
}

/// Digest of an index subset (RX probe selections).
inline ConfigDigest digest_indices(std::span<const std::size_t> idx) noexcept {
  DigestBuilder builder;
  builder.add_size(idx.size());
  for (const std::size_t i : idx) builder.add_size(i);
  return builder.digest();
}

/// Order-dependent combination of two digests (e.g. config x RX subset).
inline ConfigDigest combine(const ConfigDigest& a,
                            const ConfigDigest& b) noexcept {
  DigestBuilder builder;
  builder.add_word(a.lo);
  builder.add_word(a.hi);
  builder.add_word(b.lo);
  builder.add_word(b.hi);
  return builder.digest();
}

}  // namespace surfos::util
