#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace surfos::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, std::string_view component, std::string_view msg) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(level_name(level).size()), level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace surfos::util
