// Scalar reference backend. This TU is compiled with -fno-tree-vectorize
// -fno-tree-slp-vectorize -ffp-contract=off so the "scalar" baseline in
// BENCH_simd.json is genuinely scalar code, and so its arithmetic is the
// exact IEEE double sequence the vector backends must reproduce.
#include <cmath>
#include <cstdint>
#include <cstring>

#include "util/simd.hpp"
#include "util/simd_backends.hpp"
#include "util/simd_kernels.hpp"

namespace surfos::util::simd::detail {
namespace {

struct ScalarPack {
  static constexpr std::size_t W = kWidth;
  struct reg {
    double v[W];
  };
  struct mask {
    bool v[W];
  };

  static reg load(const double* p) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = p[l];
    return r;
  }
  static void store(double* p, reg a) {
    for (std::size_t l = 0; l < W; ++l) p[l] = a.v[l];
  }
  static reg set1(double x) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = x;
    return r;
  }
  static reg zero() { return set1(0.0); }

  static reg add(reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  static reg sub(reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
  }
  static reg mul(reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  static reg div(reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = a.v[l] / b.v[l];
    return r;
  }
  static reg sqrt_(reg a) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = std::sqrt(a.v[l]);
    return r;
  }
  static reg abs_(reg a) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = std::fabs(a.v[l]);
    return r;
  }
  static reg neg(reg a) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = -a.v[l];
    return r;
  }
  static reg min_(reg a, reg b) {
    reg r;
    // Vector-min semantics (second operand on NaN), matches _mm_min_pd.
    for (std::size_t l = 0; l < W; ++l)
      r.v[l] = a.v[l] < b.v[l] ? a.v[l] : b.v[l];
    return r;
  }
  static reg max_(reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l)
      r.v[l] = a.v[l] > b.v[l] ? a.v[l] : b.v[l];
    return r;
  }
  static reg round_ne(reg a) {
    reg r;
    // Default FP environment: rint == round-to-nearest-even.
    for (std::size_t l = 0; l < W; ++l) r.v[l] = std::rint(a.v[l]);
    return r;
  }
  static reg floor_(reg a) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = std::floor(a.v[l]);
    return r;
  }
  static reg exp2i(reg k) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) {
      const auto ki = static_cast<std::int64_t>(k.v[l]);
      const std::uint64_t bits = static_cast<std::uint64_t>(ki + 1023) << 52;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      r.v[l] = d;
    }
    return r;
  }

  static std::uint64_t bits_of(double x) {
    std::uint64_t b;
    std::memcpy(&b, &x, sizeof(b));
    return b;
  }
  static double double_of(std::uint64_t b) {
    double d;
    std::memcpy(&d, &b, sizeof(d));
    return d;
  }
  static reg xor_bits(reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l)
      r.v[l] = double_of(bits_of(a.v[l]) ^ bits_of(b.v[l]));
    return r;
  }
  static reg and_bits(reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l)
      r.v[l] = double_of(bits_of(a.v[l]) & bits_of(b.v[l]));
    return r;
  }
  static reg or_bits(reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l)
      r.v[l] = double_of(bits_of(a.v[l]) | bits_of(b.v[l]));
    return r;
  }
  static reg andnot_bits(reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l)
      r.v[l] = double_of(~bits_of(a.v[l]) & bits_of(b.v[l]));
    return r;
  }

  static mask cmp_lt(reg a, reg b) {
    mask m;
    for (std::size_t l = 0; l < W; ++l) m.v[l] = a.v[l] < b.v[l];
    return m;
  }
  static mask cmp_le(reg a, reg b) {
    mask m;
    for (std::size_t l = 0; l < W; ++l) m.v[l] = a.v[l] <= b.v[l];
    return m;
  }
  static mask cmp_gt(reg a, reg b) {
    mask m;
    for (std::size_t l = 0; l < W; ++l) m.v[l] = a.v[l] > b.v[l];
    return m;
  }
  static mask cmp_ge(reg a, reg b) {
    mask m;
    for (std::size_t l = 0; l < W; ++l) m.v[l] = a.v[l] >= b.v[l];
    return m;
  }
  static mask cmp_eq(reg a, reg b) {
    mask m;
    for (std::size_t l = 0; l < W; ++l) m.v[l] = a.v[l] == b.v[l];
    return m;
  }
  static mask mand(mask a, mask b) {
    mask m;
    for (std::size_t l = 0; l < W; ++l) m.v[l] = a.v[l] && b.v[l];
    return m;
  }
  static mask mor(mask a, mask b) {
    mask m;
    for (std::size_t l = 0; l < W; ++l) m.v[l] = a.v[l] || b.v[l];
    return m;
  }
  static reg blend(mask m, reg a, reg b) {
    reg r;
    for (std::size_t l = 0; l < W; ++l) r.v[l] = m.v[l] ? a.v[l] : b.v[l];
    return r;
  }
  static bool any(mask m) {
    bool r = false;
    for (std::size_t l = 0; l < W; ++l) r = r || m.v[l];
    return r;
  }
  static void store_mask(double* p, mask m) {
    for (std::size_t l = 0; l < W; ++l)
      p[l] = m.v[l] ? double_of(~std::uint64_t{0}) : 0.0;
  }
  static mask load_mask(const double* p) {
    mask m;
    for (std::size_t l = 0; l < W; ++l) m.v[l] = bits_of(p[l]) != 0;
    return m;
  }
};

const Ops kTable = make_ops<ScalarPack>("scalar", Backend::kScalar);

}  // namespace

const Ops* scalar_ops() { return &kTable; }

}  // namespace surfos::util::simd::detail
