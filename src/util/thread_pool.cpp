#include "util/thread_pool.hpp"

#include "core/config.hpp"
#include "telemetry/telemetry.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace surfos::util {

namespace {

thread_local bool t_in_worker = false;

std::size_t auto_degree() {
  const unsigned hw = std::thread::hardware_concurrency();
  // SURFOS_THREADS needs at least 1 worker; invalid values fall back to
  // the detected core count.
  // Routed through the config snapshot (core/config.hpp): the pool is
  // built once per process, so this is a construction-time knob — the
  // daemon snapshots it before spawning any worker.
  return core::knob("SURFOS_THREADS", hw > 0 ? hw : 1, 1);
}

/// One parallel_for in flight: a chunk cursor plus completion accounting.
/// Held by shared_ptr so late-waking workers can safely probe an already
/// finished loop.
struct LoopState {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t, std::size_t)>* range_fn = nullptr;
  /// The submitting thread's ambient trace context: workers adopt it while
  /// draining this loop, so traced spans inside the body keep the intent's
  /// trace id across the pool boundary.
  telemetry::TraceContext trace{};

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> done_chunks{0};

  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;                 // from the lowest-index chunk
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();

  bool exhausted() const noexcept {
    return next_chunk.load(std::memory_order_relaxed) >= chunk_count;
  }

  /// Runs chunks until the cursor is exhausted. Returns when this thread
  /// can grab no more work (other threads may still be running chunks).
  void drain() {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunk_count) return;
      const std::size_t b = begin + c * chunk;
      const std::size_t e = std::min(end, b + chunk);
      try {
        (*range_fn)(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (c < error_chunk) {
          error_chunk = c;
          error = std::current_exception();
        }
      }
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          chunk_count) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [this] {
      return done_chunks.load(std::memory_order_acquire) == chunk_count;
    });
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<std::shared_ptr<LoopState>> queue;
  bool stopping = false;

  explicit Impl(std::size_t worker_count) {
    workers.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (auto& t : workers) t.join();
  }

  void worker_loop() {
    t_in_worker = true;
    for (;;) {
      std::shared_ptr<LoopState> loop;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [this] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        // A loop stays at the head until its cursor is exhausted so every
        // waking worker joins it; exhausted loops are dropped here.
        while (!queue.empty() && queue.front()->exhausted()) queue.pop_front();
        if (queue.empty()) continue;
        loop = queue.front();
      }
      {
        const telemetry::TraceScope trace_scope(loop->trace);
        loop->drain();
      }
    }
  }

  void run(const std::shared_ptr<LoopState>& state) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back(state);
    }
    work_cv.notify_all();
    state->drain();
    state->wait();
    std::lock_guard<std::mutex> lock(mutex);
    while (!queue.empty() && queue.front()->exhausted()) queue.pop_front();
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : degree_(threads == 0 ? auto_degree() : threads) {
  if (degree_ > 1) impl_ = new Impl(degree_ - 1);
}

ThreadPool::~ThreadPool() { delete impl_; }

bool ThreadPool::in_worker() noexcept { return t_in_worker; }

void ThreadPool::run_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& range_fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Dispatch count is structural (one per parallel loop issued), so it is
  // identical under any SURFOS_THREADS value; which *path* a dispatch takes
  // is a scheduling detail and tracked by the non-deterministic counters.
  SURFOS_COUNT("util.pool.dispatches");
  // Serial path: SURFOS_THREADS=1, tiny ranges, or a nested call from a
  // worker (running inline avoids deadlock and keeps chunk order trivial).
  if (impl_ == nullptr || n == 1 || t_in_worker) {
    if (t_in_worker) {
      SURFOS_COUNT_SCHED("util.pool.nested_inline", 1);
    } else {
      SURFOS_COUNT_SCHED("util.pool.serial_runs", 1);
    }
    range_fn(begin, end);
    return;
  }
  SURFOS_TRACE_SPAN("util.pool.run");
  auto state = std::make_shared<LoopState>();
  state->begin = begin;
  state->end = end;
  state->trace = telemetry::current_trace();
  // ~4 chunks per thread bounds imbalance from uneven per-index cost while
  // keeping scheduling overhead negligible; chunk geometry only affects
  // which thread runs which indices, so slot-writing callers stay
  // bit-deterministic across any thread count.
  state->chunk = std::max<std::size_t>(1, n / (4 * degree_));
  state->chunk_count = (n + state->chunk - 1) / state->chunk;
  state->range_fn = &range_fn;
  SURFOS_COUNT_SCHED("util.pool.chunks", state->chunk_count);
  impl_->run(state);
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void reset_global_pool(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace surfos::util
