// Runtime backend dispatch: CPU feature detection + SURFOS_SIMD override.
#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/simd_backends.hpp"

namespace surfos::util::simd {
namespace {

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;  // aarch64 baseline
#else
      return false;
#endif
  }
  return false;
}

const Ops* table_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return detail::scalar_ops();
    case Backend::kAvx2:
      return detail::avx2_ops();
    case Backend::kAvx512:
      return detail::avx512_ops();
    case Backend::kNeon:
      return detail::neon_ops();
  }
  return nullptr;
}

// Preference order for "auto": widest first.
constexpr Backend kAutoOrder[] = {Backend::kAvx512, Backend::kAvx2,
                                  Backend::kNeon, Backend::kScalar};

const Ops* best_available() {
  for (const Backend b : kAutoOrder) {
    const Ops* t = ops_for(b);
    if (t != nullptr) return t;
  }
  return detail::scalar_ops();  // unreachable; scalar always exists
}

bool parse_backend(const char* s, Backend* out) {
  if (std::strcmp(s, "scalar") == 0) *out = Backend::kScalar;
  else if (std::strcmp(s, "avx2") == 0) *out = Backend::kAvx2;
  else if (std::strcmp(s, "avx512") == 0) *out = Backend::kAvx512;
  else if (std::strcmp(s, "neon") == 0) *out = Backend::kNeon;
  else return false;
  return true;
}

const Ops* resolve_from_env() {
  const char* env = std::getenv("SURFOS_SIMD");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    Backend requested;
    if (parse_backend(env, &requested)) {
      const Ops* t = ops_for(requested);
      if (t != nullptr) return t;
    }
    // Unknown name or backend unavailable on this host: fall through to
    // auto selection rather than failing.
  }
  return best_available();
}

std::atomic<const Ops*> g_active{nullptr};

}  // namespace

const Ops* ops_for(Backend b) {
  if (!cpu_supports(b)) return nullptr;
  return table_for(b);
}

const Ops& ops() {
  const Ops* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = resolve_from_env();
    // Benign race: every thread resolves to the same table.
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

bool set_backend(Backend b) {
  const Ops* t = ops_for(b);
  if (t == nullptr) return false;
  g_active.store(t, std::memory_order_release);
  return true;
}

void reset_backend() {
  g_active.store(resolve_from_env(), std::memory_order_release);
}

Backend active_backend() { return ops().backend; }

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (const Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512,
                          Backend::kNeon}) {
    if (ops_for(b) != nullptr) out.push_back(b);
  }
  return out;
}

}  // namespace surfos::util::simd
