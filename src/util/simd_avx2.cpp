// AVX2 backend: the 8-double virtual lane is a pair of ymm registers.
// Compiled with -mavx2 -ffp-contract=off (no FMA — contraction would break
// bit-exact agreement with the scalar reference).
#include "util/simd.hpp"
#include "util/simd_backends.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "util/simd_kernels.hpp"

namespace surfos::util::simd::detail {
namespace {

struct Avx2Pack {
  static constexpr std::size_t W = kWidth;
  struct reg {
    __m256d lo, hi;
  };
  using mask = reg;  // compare results: all-ones / all-zero lanes

  static reg load(const double* p) {
    return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
  }
  static void store(double* p, reg a) {
    _mm256_storeu_pd(p, a.lo);
    _mm256_storeu_pd(p + 4, a.hi);
  }
  static reg set1(double x) {
    const __m256d v = _mm256_set1_pd(x);
    return {v, v};
  }
  static reg zero() {
    const __m256d v = _mm256_setzero_pd();
    return {v, v};
  }

  static reg add(reg a, reg b) {
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
  }
  static reg sub(reg a, reg b) {
    return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
  }
  static reg mul(reg a, reg b) {
    return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
  }
  static reg div(reg a, reg b) {
    return {_mm256_div_pd(a.lo, b.lo), _mm256_div_pd(a.hi, b.hi)};
  }
  static reg sqrt_(reg a) {
    return {_mm256_sqrt_pd(a.lo), _mm256_sqrt_pd(a.hi)};
  }
  static reg abs_(reg a) {
    const __m256d m = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    return {_mm256_and_pd(a.lo, m), _mm256_and_pd(a.hi, m)};
  }
  static reg neg(reg a) {
    const __m256d s = _mm256_set1_pd(-0.0);
    return {_mm256_xor_pd(a.lo, s), _mm256_xor_pd(a.hi, s)};
  }
  static reg min_(reg a, reg b) {
    return {_mm256_min_pd(a.lo, b.lo), _mm256_min_pd(a.hi, b.hi)};
  }
  static reg max_(reg a, reg b) {
    return {_mm256_max_pd(a.lo, b.lo), _mm256_max_pd(a.hi, b.hi)};
  }
  static reg round_ne(reg a) {
    constexpr int kMode = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
    return {_mm256_round_pd(a.lo, kMode), _mm256_round_pd(a.hi, kMode)};
  }
  static reg floor_(reg a) {
    return {_mm256_floor_pd(a.lo), _mm256_floor_pd(a.hi)};
  }
  static reg exp2i(reg k) {
    auto half = [](__m256d v) {
      const __m128i k32 = _mm256_cvtpd_epi32(v);
      __m256i k64 = _mm256_cvtepi32_epi64(k32);
      k64 = _mm256_add_epi64(k64, _mm256_set1_epi64x(1023));
      k64 = _mm256_slli_epi64(k64, 52);
      return _mm256_castsi256_pd(k64);
    };
    return {half(k.lo), half(k.hi)};
  }

  static reg xor_bits(reg a, reg b) {
    return {_mm256_xor_pd(a.lo, b.lo), _mm256_xor_pd(a.hi, b.hi)};
  }
  static reg and_bits(reg a, reg b) {
    return {_mm256_and_pd(a.lo, b.lo), _mm256_and_pd(a.hi, b.hi)};
  }
  static reg or_bits(reg a, reg b) {
    return {_mm256_or_pd(a.lo, b.lo), _mm256_or_pd(a.hi, b.hi)};
  }
  static reg andnot_bits(reg a, reg b) {
    return {_mm256_andnot_pd(a.lo, b.lo), _mm256_andnot_pd(a.hi, b.hi)};
  }

  static mask cmp_lt(reg a, reg b) {
    return {_mm256_cmp_pd(a.lo, b.lo, _CMP_LT_OQ),
            _mm256_cmp_pd(a.hi, b.hi, _CMP_LT_OQ)};
  }
  static mask cmp_le(reg a, reg b) {
    return {_mm256_cmp_pd(a.lo, b.lo, _CMP_LE_OQ),
            _mm256_cmp_pd(a.hi, b.hi, _CMP_LE_OQ)};
  }
  static mask cmp_gt(reg a, reg b) {
    return {_mm256_cmp_pd(a.lo, b.lo, _CMP_GT_OQ),
            _mm256_cmp_pd(a.hi, b.hi, _CMP_GT_OQ)};
  }
  static mask cmp_ge(reg a, reg b) {
    return {_mm256_cmp_pd(a.lo, b.lo, _CMP_GE_OQ),
            _mm256_cmp_pd(a.hi, b.hi, _CMP_GE_OQ)};
  }
  static mask cmp_eq(reg a, reg b) {
    return {_mm256_cmp_pd(a.lo, b.lo, _CMP_EQ_OQ),
            _mm256_cmp_pd(a.hi, b.hi, _CMP_EQ_OQ)};
  }
  static mask mand(mask a, mask b) { return and_bits(a, b); }
  static mask mor(mask a, mask b) { return or_bits(a, b); }
  static reg blend(mask m, reg a, reg b) {
    return {_mm256_blendv_pd(b.lo, a.lo, m.lo),
            _mm256_blendv_pd(b.hi, a.hi, m.hi)};
  }
  static bool any(mask m) {
    return (_mm256_movemask_pd(m.lo) | _mm256_movemask_pd(m.hi)) != 0;
  }
  static void store_mask(double* p, mask m) { store(p, m); }
  static mask load_mask(const double* p) {
    // Lanes with any bit set are true; compare the integer view to zero.
    const reg v = load(p);
    auto half = [](__m256d h) {
      const __m256i iz = _mm256_cmpeq_epi64(_mm256_castpd_si256(h),
                                            _mm256_setzero_si256());
      // true where NOT equal to zero
      return _mm256_castsi256_pd(
          _mm256_xor_si256(iz, _mm256_set1_epi64x(-1)));
    };
    return {half(v.lo), half(v.hi)};
  }
};

const Ops kTable = make_ops<Avx2Pack>("avx2", Backend::kAvx2);

}  // namespace

const Ops* avx2_ops() { return &kTable; }

}  // namespace surfos::util::simd::detail

#else  // non-x86 target: backend cannot exist

namespace surfos::util::simd::detail {
const Ops* avx2_ops() { return nullptr; }
}  // namespace surfos::util::simd::detail

#endif
