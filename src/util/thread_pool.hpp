// Shared parallel execution engine.
//
// SurfOS re-optimizes surface configurations online as users move and
// services multiplex; the compute between "environment changed" and "surface
// reprogrammed" is dominated by three embarrassingly-parallel loops (channel
// precompute over RX points / panel pairs, power-map evaluation over RX
// points, and finite-difference / population objective probes). This module
// provides the one process-wide thread pool those loops share.
//
// Determinism contract: `parallel_for(begin, end, fn)` runs fn(i) exactly
// once for every i in [begin, end). Callers write results into pre-sized
// output slots (out[i] = ...) and perform any floating-point reduction
// *after* the loop, in index order. Under that discipline results are
// bit-identical regardless of thread count, and `SURFOS_THREADS=1` (a plain
// serial loop, no pool machinery) reproduces them exactly for debugging.
//
// Exceptions thrown by `fn` are captured and the one from the lowest chunk
// index is rethrown on the calling thread after all workers have drained —
// also deterministic under the contract above.
//
// Nested parallelism is safe but not amplified: a `parallel_for` issued from
// inside a pool worker runs inline (serially) on that worker, so objectives
// evaluated inside a parallel batch may themselves call parallel helpers
// without deadlocking the pool.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace surfos::util {

class ThreadPool {
 public:
  /// `threads` is the total parallelism degree (calling thread included).
  /// 0 means "auto": the SURFOS_THREADS environment variable if set and
  /// valid, otherwise std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism degree (>= 1). 1 means every parallel_for is a serial loop.
  std::size_t thread_count() const noexcept { return degree_; }

  /// Calls fn(i) for every i in [begin, end), distributing contiguous chunks
  /// over the pool; the calling thread participates. Blocks until every
  /// index ran; rethrows the lowest-chunk exception if any fn threw.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    run_chunked(begin, end, [&fn](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) fn(i);
    });
  }

  /// parallel_for over a random-access container: fn(container[i]).
  template <typename Container, typename Fn>
  void parallel_for_each(Container& container, Fn&& fn) {
    run_chunked(0, container.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) fn(container[i]);
    });
  }

  /// Type-erased core: `range_fn(b, e)` is invoked on half-open subranges
  /// that exactly tile [begin, end). Exposed for callers that want to
  /// amortize per-index work (e.g. per-chunk scratch buffers).
  void run_chunked(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t)>&
                       range_fn);

  /// True when the current thread is a pool worker (nested calls inline).
  static bool in_worker() noexcept;

 private:
  struct Impl;
  Impl* impl_ = nullptr;    // null when degree_ == 1 (pure serial mode)
  std::size_t degree_ = 1;
};

/// The process-wide pool, lazily constructed on first use. Sized from
/// SURFOS_THREADS when set (>= 1), else hardware concurrency.
ThreadPool& global_pool();

/// Re-sizes the process-wide pool (tests / benches measuring scaling).
/// `threads` as in the ThreadPool constructor. Must not be called while a
/// parallel_for on the global pool is in flight.
void reset_global_pool(std::size_t threads);

/// Convenience forwarding to the global pool.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  global_pool().parallel_for(begin, end, std::forward<Fn>(fn));
}

template <typename Container, typename Fn>
void parallel_for_each(Container& container, Fn&& fn) {
  global_pool().parallel_for_each(container, std::forward<Fn>(fn));
}

}  // namespace surfos::util
