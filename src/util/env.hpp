// Environment-variable knob parsing shared by every subsystem.
//
// All SurfOS size/count knobs (SURFOS_THREADS, SURFOS_EVAL_CACHE,
// SURFOS_TRACE_BUFFER, ...) parse through env_size so they agree on the
// rejection rules: values must be plain base-10 non-negative integers with
// no trailing junk, and anything unparsable, negative, overflowing, or
// below the knob's minimum falls back to the built-in default. This
// replaces the per-file strtoul/strtol parsing where "-1" silently wrapped
// to ULONG_MAX.
//
// Header-only (inline): surfos_telemetry is deliberately dependency-free
// and cannot link surfos_util, but its SURFOS_TRACE_BUFFER knob still
// parses through this helper.
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <limits>

namespace surfos::util {

/// Parses environment variable `name` as a non-negative size.
///
/// Returns `fallback` when the variable is unset, empty, not a full
/// base-10 integer (trailing junk rejected), negative, out of range, or
/// smaller than `min_value`. A knob that treats 0 as "disabled" passes
/// `min_value = 0`; a knob that needs at least one unit passes 1.
inline std::size_t env_size(const char* name, std::size_t fallback,
                            std::size_t min_value) noexcept {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  // Signed parse so "-1" is seen as a negative number and rejected instead
  // of wrapping to a huge unsigned value (the strtoul bug this replaces).
  const long long parsed = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0') return fallback;  // junk / trailing junk
  if (errno == ERANGE) return fallback;             // out of long long range
  if (parsed < 0) return fallback;                  // negatives rejected
  const auto value = static_cast<unsigned long long>(parsed);
  if (value > std::numeric_limits<std::size_t>::max()) return fallback;
  if (value < min_value) return fallback;
  return static_cast<std::size_t>(value);
}

}  // namespace surfos::util
