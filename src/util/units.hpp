// Unit conversions used across the EM and OS layers. Keeping dB math in one
// place avoids the classic factor-of-10-vs-20 bug class.
#pragma once

#include <cmath>

namespace surfos::util {

/// Power ratio -> decibels.
inline double to_db(double power_ratio) noexcept {
  return 10.0 * std::log10(power_ratio);
}

/// Decibels -> power ratio.
inline double from_db(double db) noexcept { return std::pow(10.0, db / 10.0); }

/// Amplitude (field) ratio -> decibels.
inline double amplitude_to_db(double amplitude_ratio) noexcept {
  return 20.0 * std::log10(amplitude_ratio);
}

/// Watts -> dBm.
inline double watts_to_dbm(double watts) noexcept {
  return 10.0 * std::log10(watts * 1e3);
}

/// dBm -> Watts.
inline double dbm_to_watts(double dbm) noexcept {
  return std::pow(10.0, dbm / 10.0) * 1e-3;
}

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

inline double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }
inline double rad_to_deg(double rad) noexcept { return rad * 180.0 / kPi; }

/// Wrap an angle to [0, 2*pi).
inline double wrap_two_pi(double rad) noexcept {
  double w = std::fmod(rad, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

/// Wrap an angle to (-pi, pi].
inline double wrap_pi(double rad) noexcept {
  double w = wrap_two_pi(rad);
  if (w > kPi) w -= kTwoPi;
  return w;
}

}  // namespace surfos::util
