// Small string helpers shared by the intent engine, datasheet parser, and
// table printers. All functions are pure and allocate only when they must.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace surfos::util {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Split on runs of whitespace; empty tokens are dropped.
std::vector<std::string_view> split_words(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// True if `haystack` contains `needle` (case-sensitive).
bool contains(std::string_view haystack, std::string_view needle) noexcept;

/// True if `haystack` contains `needle` ignoring ASCII case.
bool contains_ignore_case(std::string_view haystack, std::string_view needle);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parse a double; returns false on malformed input (no partial parses).
bool parse_double(std::string_view text, double& out) noexcept;

/// Parse a non-negative integer; returns false on malformed input.
bool parse_uint(std::string_view text, std::uint64_t& out) noexcept;

}  // namespace surfos::util
