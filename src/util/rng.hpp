// Deterministic random number generation.
//
// Every stochastic component in SurfOS (optimizer restarts, SPSA
// perturbations, workload generators) draws from an explicitly seeded Rng so
// that experiments and tests are exactly reproducible. The engine is
// xoshiro256**, which is small, fast, and has well-understood statistical
// quality for simulation use.
#pragma once

#include <cstdint>
#include <limits>

namespace surfos::util {

/// Deterministic PRNG (xoshiro256**). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5005F05u) noexcept { reseed(seed); }

  /// Re-initialize state from a single seed via SplitMix64 expansion.
  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = split_mix(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Multiply-shift rejection-free mapping; bias is negligible for n << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Standard normal via Box-Muller (one value per call; simple over fast).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) * __builtin_cos(kTwoPi * u2);
  }

  /// Rademacher +/-1 draw (used by SPSA).
  double sign() noexcept { return ((*this)() & 1u) ? 1.0 : -1.0; }

  /// Derive an independent child stream, e.g. one per optimizer restart.
  Rng fork() noexcept { return Rng{(*this)() ^ 0x9E3779B97F4A7C15ull}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static std::uint64_t split_mix(std::uint64_t& state) noexcept {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4]{};
};

}  // namespace surfos::util
