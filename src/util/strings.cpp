#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace surfos::util {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_words(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}

bool contains_ignore_case(std::string_view haystack, std::string_view needle) {
  return contains(to_lower(haystack), to_lower(needle));
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool parse_double(std::string_view text, double& out) noexcept {
  text = trim(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_uint(std::string_view text, std::uint64_t& out) noexcept {
  text = trim(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace surfos::util
