#include "util/csv.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace surfos::util {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), width_(headers.size()) {
  if (headers.empty()) throw std::invalid_argument("CsvWriter: no headers");
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << csv_escape(headers[i]);
  }
  os_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& values) {
  if (values.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width does not match headers");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << format("%.10g", values[i]);
  }
  os_ << '\n';
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace surfos::util
