// Internal: per-backend Ops providers. Each function returns nullptr when
// the backend cannot exist on the compilation target (e.g. NEON on x86);
// availability on the *running* CPU is checked by the dispatcher.
#pragma once

namespace surfos::util::simd {
struct Ops;
namespace detail {
const Ops* scalar_ops();
const Ops* avx2_ops();
const Ops* avx512_ops();
const Ops* neon_ops();
}  // namespace detail
}  // namespace surfos::util::simd
