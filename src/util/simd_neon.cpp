// NEON backend (aarch64): the 8-double virtual lane is four 128-bit
// registers. Compiled with -ffp-contract=off like every other backend.
#include "util/simd.hpp"
#include "util/simd_backends.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "util/simd_kernels.hpp"

namespace surfos::util::simd::detail {
namespace {

struct NeonPack {
  static constexpr std::size_t W = kWidth;
  struct reg {
    float64x2_t v[4];
  };
  struct mask {
    uint64x2_t v[4];
  };

  static reg load(const double* p) {
    return {{vld1q_f64(p), vld1q_f64(p + 2), vld1q_f64(p + 4),
             vld1q_f64(p + 6)}};
  }
  static void store(double* p, reg a) {
    vst1q_f64(p, a.v[0]);
    vst1q_f64(p + 2, a.v[1]);
    vst1q_f64(p + 4, a.v[2]);
    vst1q_f64(p + 6, a.v[3]);
  }
  static reg set1(double x) {
    const float64x2_t v = vdupq_n_f64(x);
    return {{v, v, v, v}};
  }
  static reg zero() { return set1(0.0); }

#define SURFOS_NEON_MAP2(name, op)                         \
  static reg name(reg a, reg b) {                          \
    return {{op(a.v[0], b.v[0]), op(a.v[1], b.v[1]),       \
             op(a.v[2], b.v[2]), op(a.v[3], b.v[3])}};     \
  }
#define SURFOS_NEON_MAP1(name, op)                                  \
  static reg name(reg a) {                                          \
    return {{op(a.v[0]), op(a.v[1]), op(a.v[2]), op(a.v[3])}};      \
  }
  SURFOS_NEON_MAP2(add, vaddq_f64)
  SURFOS_NEON_MAP2(sub, vsubq_f64)
  SURFOS_NEON_MAP2(mul, vmulq_f64)
  SURFOS_NEON_MAP2(div, vdivq_f64)
  SURFOS_NEON_MAP2(min_, vminq_f64)
  SURFOS_NEON_MAP2(max_, vmaxq_f64)
  SURFOS_NEON_MAP1(sqrt_, vsqrtq_f64)
  SURFOS_NEON_MAP1(abs_, vabsq_f64)
  SURFOS_NEON_MAP1(neg, vnegq_f64)
  SURFOS_NEON_MAP1(round_ne, vrndnq_f64)
  SURFOS_NEON_MAP1(floor_, vrndmq_f64)
#undef SURFOS_NEON_MAP2
#undef SURFOS_NEON_MAP1

  static reg exp2i(reg k) {
    auto half = [](float64x2_t v) {
      int64x2_t k64 = vcvtnq_s64_f64(v);
      k64 = vaddq_s64(k64, vdupq_n_s64(1023));
      k64 = vshlq_n_s64(k64, 52);
      return vreinterpretq_f64_s64(k64);
    };
    return {{half(k.v[0]), half(k.v[1]), half(k.v[2]), half(k.v[3])}};
  }

#define SURFOS_NEON_BITS2(name, op)                                          \
  static reg name(reg a, reg b) {                                            \
    reg r;                                                                   \
    for (int i = 0; i < 4; ++i)                                              \
      r.v[i] = vreinterpretq_f64_u64(                                        \
          op(vreinterpretq_u64_f64(a.v[i]), vreinterpretq_u64_f64(b.v[i]))); \
    return r;                                                                \
  }
  SURFOS_NEON_BITS2(xor_bits, veorq_u64)
  SURFOS_NEON_BITS2(and_bits, vandq_u64)
  SURFOS_NEON_BITS2(or_bits, vorrq_u64)
#undef SURFOS_NEON_BITS2
  static reg andnot_bits(reg a, reg b) {  // ~a & b
    reg r;
    for (int i = 0; i < 4; ++i)
      r.v[i] = vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(b.v[i]),
                                               vreinterpretq_u64_f64(a.v[i])));
    return r;
  }

#define SURFOS_NEON_CMP(name, op)                      \
  static mask name(reg a, reg b) {                     \
    return {{op(a.v[0], b.v[0]), op(a.v[1], b.v[1]),   \
             op(a.v[2], b.v[2]), op(a.v[3], b.v[3])}}; \
  }
  SURFOS_NEON_CMP(cmp_lt, vcltq_f64)
  SURFOS_NEON_CMP(cmp_le, vcleq_f64)
  SURFOS_NEON_CMP(cmp_gt, vcgtq_f64)
  SURFOS_NEON_CMP(cmp_ge, vcgeq_f64)
  SURFOS_NEON_CMP(cmp_eq, vceqq_f64)
#undef SURFOS_NEON_CMP

  static mask mand(mask a, mask b) {
    return {{vandq_u64(a.v[0], b.v[0]), vandq_u64(a.v[1], b.v[1]),
             vandq_u64(a.v[2], b.v[2]), vandq_u64(a.v[3], b.v[3])}};
  }
  static mask mor(mask a, mask b) {
    return {{vorrq_u64(a.v[0], b.v[0]), vorrq_u64(a.v[1], b.v[1]),
             vorrq_u64(a.v[2], b.v[2]), vorrq_u64(a.v[3], b.v[3])}};
  }
  static reg blend(mask m, reg a, reg b) {
    reg r;
    for (int i = 0; i < 4; ++i) r.v[i] = vbslq_f64(m.v[i], a.v[i], b.v[i]);
    return r;
  }
  static bool any(mask m) {
    uint64x2_t o = vorrq_u64(vorrq_u64(m.v[0], m.v[1]),
                             vorrq_u64(m.v[2], m.v[3]));
    return (vgetq_lane_u64(o, 0) | vgetq_lane_u64(o, 1)) != 0;
  }
  static void store_mask(double* p, mask m) {
    for (int i = 0; i < 4; ++i)
      vst1q_f64(p + 2 * i, vreinterpretq_f64_u64(m.v[i]));
  }
  static mask load_mask(const double* p) {
    mask m;
    const uint64x2_t z = vdupq_n_u64(0);
    for (int i = 0; i < 4; ++i) {
      const uint64x2_t v = vreinterpretq_u64_f64(vld1q_f64(p + 2 * i));
      // true where any bit is set
      m.v[i] = vreinterpretq_u64_u32(
          vmvnq_u32(vreinterpretq_u32_u64(vceqq_u64(v, z))));
    }
    return m;
  }
};

const Ops kTable = make_ops<NeonPack>("neon", Backend::kNeon);

}  // namespace

const Ops* neon_ops() { return &kTable; }

}  // namespace surfos::util::simd::detail

#else  // non-aarch64 target: backend cannot exist

namespace surfos::util::simd::detail {
const Ops* neon_ops() { return nullptr; }
}  // namespace surfos::util::simd::detail

#endif
