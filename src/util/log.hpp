// Minimal leveled logging for SurfOS.
//
// The OS layers (hardware manager, orchestrator, broker) narrate scheduling
// and driver decisions through this logger; tests silence it by raising the
// level. Not thread-safe by design: SurfOS's control plane is single-threaded
// (see DESIGN.md), and the data plane (drivers) never logs on the hot path.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace surfos::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emit one line (used by the SURFOS_LOG macro; rarely called directly).
void log_line(LogLevel level, std::string_view component, std::string_view msg);

/// Human-readable level tag, e.g. "INFO".
std::string_view level_name(LogLevel level) noexcept;

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace surfos::util

#define SURFOS_LOG(level, component)                                     \
  if (::surfos::util::log_level() <= (level))                            \
  ::surfos::util::detail::LogStream((level), (component))

#define SURFOS_INFO(component) \
  SURFOS_LOG(::surfos::util::LogLevel::kInfo, component)
#define SURFOS_DEBUG(component) \
  SURFOS_LOG(::surfos::util::LogLevel::kDebug, component)
#define SURFOS_WARN(component) \
  SURFOS_LOG(::surfos::util::LogLevel::kWarn, component)
#define SURFOS_ERROR(component) \
  SURFOS_LOG(::surfos::util::LogLevel::kError, component)
