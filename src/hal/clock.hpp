// Simulated monotonic clock (microsecond resolution).
//
// Every time-dependent component — control links, driver config-apply
// delays, the orchestrator's scheduler slots — reads one shared SimClock,
// which tests and benches advance explicitly. This keeps the entire OS
// deterministic and lets a test "wait" a millisecond in zero wall time.
#pragma once

#include <cstdint>

namespace surfos::hal {

using Micros = std::uint64_t;

class SimClock {
 public:
  Micros now() const noexcept { return now_us_; }

  void advance(Micros delta_us) noexcept { now_us_ += delta_us; }

  /// Jump to an absolute time; never moves backwards.
  void advance_to(Micros t_us) noexcept {
    if (t_us > now_us_) now_us_ = t_us;
  }

 private:
  Micros now_us_ = 0;
};

inline constexpr Micros kMicrosPerMilli = 1000;
inline constexpr Micros kMicrosPerSecond = 1'000'000;

/// "Infinite" delay marker used for passive hardware's control delay
/// ("Passive surfaces only have one-time configurability ... i.e., infinite
/// control delay, similar to ROM" — paper 3.1).
inline constexpr Micros kInfiniteDelay = ~Micros{0};

}  // namespace surfos::hal
