#include "hal/link.hpp"

#include <stdexcept>

namespace surfos::hal {

ControlLink::ControlLink(const SimClock* clock, LinkOptions options)
    : clock_(clock), options_(options), rng_(options.seed) {
  if (clock_ == nullptr) throw std::invalid_argument("ControlLink: null clock");
}

void ControlLink::send(std::span<const std::uint8_t> datagram) {
  ++sent_;
  if (options_.loss_probability > 0.0 &&
      rng_.uniform() < options_.loss_probability) {
    ++dropped_;
    return;
  }
  Pending pending;
  pending.deliver_at = clock_->now() + options_.latency_us;
  pending.bytes.assign(datagram.begin(), datagram.end());
  if (!pending.bytes.empty() && options_.corrupt_probability > 0.0 &&
      rng_.uniform() < options_.corrupt_probability) {
    ++corrupted_;
    const std::size_t byte_index = rng_.below(pending.bytes.size());
    pending.bytes[byte_index] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
  }
  queue_.push_back(std::move(pending));
}

std::vector<std::vector<std::uint8_t>> ControlLink::receive_ready() {
  std::vector<std::vector<std::uint8_t>> out;
  while (!queue_.empty() && queue_.front().deliver_at <= clock_->now()) {
    out.push_back(std::move(queue_.front().bytes));
    queue_.pop_front();
  }
  return out;
}

}  // namespace surfos::hal
