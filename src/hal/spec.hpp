// Hardware specifications exposed by drivers to the upper layers
// (paper 3.1 "Hardware specifications"): wideband frequency response,
// operation mode, control delay, granularity, configuration storage.
#pragma once

#include <map>
#include <string>

#include "em/band.hpp"
#include "hal/clock.hpp"
#include "surface/types.hpp"

namespace surfos::hal {

struct HardwareSpec {
  std::string model;
  surface::OperationMode op_mode = surface::OperationMode::kReflective;
  surface::Reconfigurability reconfigurability =
      surface::Reconfigurability::kProgrammable;
  surface::ControlGranularity granularity =
      surface::ControlGranularity::kElement;

  /// Reflection/transmission power efficiency per band in [0, 1]. Bands not
  /// listed are treated as transparent pass-through with `offband_response`
  /// efficiency — the "unintended blocking" figure the orchestrator checks
  /// when co-locating surfaces for different networks (paper 2.1).
  std::map<em::Band, double> band_response;
  double offband_blocking = 0.1;  ///< Fractional attenuation off-band.

  /// Latency from issuing a configuration update to it taking effect.
  /// kInfiniteDelay for passive (fabrication-time-only) hardware.
  Micros control_delay_us = 500;

  /// Number of locally stored configurations the hardware can switch among
  /// (beamforming-codebook style; 1 for single-register designs).
  std::size_t config_slots = 4;

  /// Power draw when actively holding a configuration [mW]; 0 for passive.
  double power_mw = 0.0;

  bool is_passive() const noexcept {
    return reconfigurability == surface::Reconfigurability::kPassive;
  }

  /// Response efficiency on a band (on-band entry, or off-band default).
  double response_on(em::Band band) const {
    const auto it = band_response.find(band);
    if (it != band_response.end()) return it->second;
    return 1.0 - offband_blocking;
  }
};

}  // namespace surfos::hal
