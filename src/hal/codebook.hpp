// Beam-codebook helpers: build per-target steering configurations and load
// them into a driver's configuration slots — the beamforming-codebook
// pattern the paper cites from 802.11ad APs ("analogous to ... beamforming
// codebooks"). Combined with CodebookSelector, this is SurfOS's complete
// data plane: the control plane writes the codebook once, endpoint feedback
// switches beams locally thereafter.
#pragma once

#include <span>
#include <vector>

#include "geom/vec3.hpp"
#include "hal/driver.hpp"

namespace surfos::hal {

/// One focus configuration per target, for a beam swept from `source`
/// (the AP or the upstream surface) through the panel to each target.
std::vector<surface::SurfaceConfig> build_steering_codebook(
    const surface::SurfacePanel& panel, const geom::Vec3& source,
    std::span<const geom::Vec3> targets, double frequency_hz);

/// Writes the codebook into the driver's slots (slot i = target i).
/// Returns the number of slots written; targets beyond the hardware's slot
/// count are dropped. The writes travel the driver's normal control path —
/// call poll() after advancing the clock to let them land.
std::size_t load_steering_codebook(SurfaceDriver& driver,
                                   const geom::Vec3& source,
                                   std::span<const geom::Vec3> targets,
                                   double frequency_hz);

}  // namespace surfos::hal
