#include "hal/reliable.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace surfos::hal {

ReliableLink::ReliableLink(const SimClock* clock, ReliableOptions options)
    : clock_(clock),
      options_(options),
      forward_(clock, options.forward),
      reverse_(clock, [&] {
        // The ack path shares the forward path's latency by default.
        LinkOptions reverse = options.reverse;
        if (reverse.latency_us == LinkOptions{}.latency_us &&
            options.forward.latency_us != LinkOptions{}.latency_us) {
          reverse.latency_us = options.forward.latency_us;
        }
        reverse.seed ^= 0x9E37u;  // decorrelate loss from the forward path
        return reverse;
      }()) {
  if (clock_ == nullptr) throw std::invalid_argument("ReliableLink: null clock");
}

void ReliableLink::send(Frame frame) {
  frame.sequence = next_seq_++;
  Outstanding outstanding;
  outstanding.bytes = encode_frame(frame);
  outstanding.last_sent = clock_->now();
  outstanding.attempts = 1;
  forward_.send(outstanding.bytes);
  in_flight_.emplace(frame.sequence, std::move(outstanding));
  SURFOS_COUNT("hal.arq.sends");
  SURFOS_TRACE_INSTANT("hal.arq.send");
}

void ReliableLink::emit_ack() {
  Frame ack;
  ack.type = MessageType::kAck;
  ack.sequence = expected_seq_ - 1;  // highest in-order frame received
  reverse_.send(encode_frame(ack));
}

void ReliableLink::poll() {
  // Receiver side: drain arrived data frames.
  bool received_any = false;
  for (const auto& datagram : forward_.receive_ready()) {
    const DecodeResult decoded = decode_frame(datagram);
    if (!decoded.frame) continue;  // corrupted: sender's timer will resend
    const Frame& frame = *decoded.frame;
    received_any = true;
    if (frame.sequence < expected_seq_) {
      ++duplicates_;  // already delivered; re-ack below
      SURFOS_COUNT("hal.arq.duplicates");
      continue;
    }
    reorder_.emplace(frame.sequence, frame);
    while (!reorder_.empty() && reorder_.begin()->first == expected_seq_) {
      if (deliver_) deliver_(reorder_.begin()->second);
      ++delivered_;
      SURFOS_COUNT("hal.arq.delivered");
      reorder_.erase(reorder_.begin());
      ++expected_seq_;
    }
  }
  if (received_any) emit_ack();

  // Sender side: process acknowledgements.
  for (const auto& datagram : reverse_.receive_ready()) {
    const DecodeResult decoded = decode_frame(datagram);
    if (!decoded.frame || decoded.frame->type != MessageType::kAck) continue;
    const std::uint32_t acked = decoded.frame->sequence;
    for (auto it = in_flight_.begin();
         it != in_flight_.end() && it->first <= acked;) {
      it = in_flight_.erase(it);
    }
  }

  // Retransmit anything stale.
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    Outstanding& out = it->second;
    if (clock_->now() - out.last_sent >= options_.rto_us) {
      if (out.attempts > options_.max_retransmissions) {
        ++abandoned_;
        SURFOS_COUNT("hal.arq.abandoned");
        SURFOS_TRACE_INSTANT("hal.arq.abandon");
        it = in_flight_.erase(it);
        continue;
      }
      forward_.send(out.bytes);
      out.last_sent = clock_->now();
      ++out.attempts;
      ++retransmissions_;
      SURFOS_COUNT("hal.arq.retransmissions");
      SURFOS_TRACE_INSTANT("hal.arq.retransmit");
    }
    ++it;
  }
}

// --- ReliableSurfaceDriver ----------------------------------------------------

ReliableSurfaceDriver::ReliableSurfaceDriver(std::string device_id,
                                             const surface::SurfacePanel* panel,
                                             HardwareSpec spec,
                                             const SimClock* clock,
                                             ReliableOptions options)
    : SurfaceDriver(std::move(device_id), panel, [&] {
        options.forward.latency_us = spec.control_delay_us;
        return spec;
      }()),
      link_(clock, options) {
  link_.set_receiver([this](const Frame& frame) { apply(frame); });
}

DriverStatus ReliableSurfaceDriver::write_config(
    std::uint16_t slot, const surface::SurfaceConfig& config) {
  if (slot >= slot_count()) return DriverStatus::kBadSlot;
  if (config.size() != panel().element_count()) return DriverStatus::kBadConfig;
  Frame frame;
  frame.type = MessageType::kWriteConfig;
  frame.slot = slot;
  frame.payload = config.serialize();
  link_.send(std::move(frame));
  return DriverStatus::kOk;
}

DriverStatus ReliableSurfaceDriver::select_config(std::uint16_t slot) {
  if (slot >= slot_count()) return DriverStatus::kBadSlot;
  Frame frame;
  frame.type = MessageType::kSelectConfig;
  frame.slot = slot;
  link_.send(std::move(frame));
  return DriverStatus::kOk;
}

void ReliableSurfaceDriver::poll() { link_.poll(); }

void ReliableSurfaceDriver::apply(const Frame& frame) {
  switch (frame.type) {
    case MessageType::kWriteConfig:
      if (frame.slot < slot_count()) {
        try {
          commit_slot(frame.slot,
                      surface::SurfaceConfig::deserialize(frame.payload));
          ++frames_applied_;
        } catch (const std::invalid_argument&) {
          // Payload malformed despite CRC (should not happen): ignore.
        }
      }
      break;
    case MessageType::kSelectConfig:
      if (frame.slot < slot_count()) {
        activate_slot(frame.slot);
        ++frames_applied_;
      }
      break;
    default:
      break;
  }
}

}  // namespace surfos::hal
