// Endpoint-feedback codebook selection — the paper's data plane.
//
// "Based on the endpoint feedback, a surface reacts locally to choose the
// best configuration" (paper 3.1, following mmWall/NR-Surface): the driver
// holds several stored configurations (a beam codebook); an endpoint reports
// the RSS it measures under each; the selector activates the winner. The
// measurement itself comes from a caller-supplied probe so the same loop
// runs against the channel simulator here and against real hardware later.
#pragma once

#include <functional>
#include <optional>

#include "hal/driver.hpp"

namespace surfos::hal {

struct SweepResult {
  std::uint16_t best_slot = 0;
  double best_metric = 0.0;
  std::vector<double> per_slot_metric;
};

/// Measures a metric (e.g. RSS dBm) with a given slot active.
using SlotProbe = std::function<double(std::uint16_t slot)>;

class CodebookSelector {
 public:
  /// Hysteresis: a new slot must beat the current one by this margin [same
  /// units as the probe metric] to trigger a switch — avoids flapping under
  /// small channel fluctuations.
  explicit CodebookSelector(double switch_margin = 0.5)
      : switch_margin_(switch_margin) {}

  /// Sweeps every stored slot of the driver, measures each with `probe`,
  /// and activates the best (if it clears the hysteresis margin over the
  /// currently active slot). Passive drivers are measured but never
  /// switched. Returns the sweep outcome.
  SweepResult sweep_and_select(SurfaceDriver& driver, const SlotProbe& probe);

  std::size_t switches() const noexcept { return switches_; }

 private:
  double switch_margin_;
  std::size_t switches_ = 0;
};

}  // namespace surfos::hal
