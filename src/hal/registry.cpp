#include "hal/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace surfos::hal {

const std::string& DeviceRegistry::add_surface(
    std::unique_ptr<SurfaceDriver> driver) {
  if (!driver) throw std::invalid_argument("DeviceRegistry: null driver");
  if (find_surface(driver->device_id()) != nullptr) {
    throw std::invalid_argument("DeviceRegistry: duplicate id " +
                                driver->device_id());
  }
  drivers_.push_back(std::move(driver));
  return drivers_.back()->device_id();
}

bool DeviceRegistry::remove_surface(const std::string& device_id) {
  const auto it = std::find_if(
      drivers_.begin(), drivers_.end(),
      [&](const auto& d) { return d->device_id() == device_id; });
  if (it == drivers_.end()) return false;
  drivers_.erase(it);
  return true;
}

SurfaceDriver* DeviceRegistry::find_surface(
    const std::string& device_id) noexcept {
  for (auto& d : drivers_) {
    if (d->device_id() == device_id) return d.get();
  }
  return nullptr;
}

const SurfaceDriver* DeviceRegistry::find_surface(
    const std::string& device_id) const noexcept {
  for (const auto& d : drivers_) {
    if (d->device_id() == device_id) return d.get();
  }
  return nullptr;
}

std::vector<SurfaceDriver*> DeviceRegistry::surfaces() {
  std::vector<SurfaceDriver*> out;
  out.reserve(drivers_.size());
  for (auto& d : drivers_) out.push_back(d.get());
  return out;
}

std::vector<const SurfaceDriver*> DeviceRegistry::surfaces() const {
  std::vector<const SurfaceDriver*> out;
  out.reserve(drivers_.size());
  for (const auto& d : drivers_) out.push_back(d.get());
  return out;
}

std::vector<SurfaceDriver*> DeviceRegistry::surfaces_on_band(em::Band band) {
  std::vector<SurfaceDriver*> out;
  for (auto& d : drivers_) {
    // Usable for service only when the hardware is tuned for the band (an
    // explicit band_response entry); mere off-band transparency does not
    // let a surface *actuate* signals there.
    const auto& response = d->spec().band_response;
    const auto it = response.find(band);
    if (it != response.end() && it->second >= 0.5) out.push_back(d.get());
  }
  return out;
}

std::vector<SurfaceDriver*> DeviceRegistry::programmable_surfaces() {
  std::vector<SurfaceDriver*> out;
  for (auto& d : drivers_) {
    if (!d->spec().is_passive()) out.push_back(d.get());
  }
  return out;
}

void DeviceRegistry::add_endpoint(EndpointDevice endpoint) {
  if (endpoint.id.empty()) {
    throw std::invalid_argument("DeviceRegistry: empty endpoint id");
  }
  for (const auto& e : endpoints_) {
    if (e.id == endpoint.id) {
      throw std::invalid_argument("DeviceRegistry: duplicate endpoint id " +
                                  endpoint.id);
    }
  }
  endpoints_.push_back(std::move(endpoint));
}

bool DeviceRegistry::remove_endpoint(const std::string& id) {
  const auto it =
      std::find_if(endpoints_.begin(), endpoints_.end(),
                   [&](const EndpointDevice& e) { return e.id == id; });
  if (it == endpoints_.end()) return false;
  endpoints_.erase(it);
  return true;
}

EndpointDevice* DeviceRegistry::find_endpoint(const std::string& id) noexcept {
  for (auto& e : endpoints_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const EndpointDevice* DeviceRegistry::find_endpoint(
    const std::string& id) const noexcept {
  for (const auto& e : endpoints_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

void DeviceRegistry::poll_all() {
  for (auto& d : drivers_) d->poll();
}

std::vector<const SurfaceDriver*> DeviceRegistry::blocking_hazards(
    em::Band band, double threshold) const {
  std::vector<const SurfaceDriver*> out;
  for (const auto& d : drivers_) {
    const auto& response = d->spec().band_response;
    if (response.find(band) != response.end()) continue;  // tuned for it
    bool adjacent = false;
    for (const auto& [tuned_band, efficiency] : response) {
      (void)efficiency;
      if (em::bands_adjacent(tuned_band, band)) adjacent = true;
    }
    if (adjacent && d->spec().response_on(band) < threshold) {
      out.push_back(d.get());
    }
  }
  return out;
}

}  // namespace surfos::hal
