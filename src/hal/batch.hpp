// Write-combining config transactions (fleet-scale control plane).
//
// The orchestrator's actuate stage historically issued one kWriteConfig
// frame per (device, slot) per assignment, immediately. At fleet scale the
// control link becomes the bottleneck: a control epoch touching a panel from
// several assignments pays the full serialize/frame/CRC cost repeatedly and
// transmits the whole element array even when one column moved.
//
// WriteCombiner turns the actuate stage into a staged transaction: stage()
// calls accumulate the *final* desired config per (device, slot) — later
// stages of the same epoch overwrite earlier ones (write combining) — and
// flush() issues at most one control transaction per dirty (device, slot),
// diffing against the driver's stored slot in wire-code space so unchanged
// slots cost zero frames and sparse changes ride a kWriteElements frame.
//
// Equivalence contract: flushing must leave exactly the hardware state a
// plain write_config(final_config) would. Diffs are therefore computed on
// the u16/u8 wire codes of SurfaceConfig::serialize (what a full frame
// would transmit), and the sparse path is only taken for element-granular
// panels, where SurfacePanel::realizable() is element-wise (group-granular
// panels project through a circular mean over control groups, so patching a
// subset of elements diverges from writing the full config).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "hal/driver.hpp"
#include "surface/config.hpp"
#include "telemetry/trace.hpp"

namespace surfos::hal {

/// Wire codes matching SurfaceConfig::serialize exactly — the diff currency.
std::uint16_t phase_code(double radians) noexcept;
std::uint8_t amplitude_code(double amplitude) noexcept;

/// kWriteElements payload codec. Layout (little-endian):
///   0..3  update count N
///   4..   N records of { u32 element index, u16 phase code, u8 amp code }
std::vector<std::uint8_t> encode_element_updates(
    std::span<const ElementUpdate> updates);
/// Throws std::invalid_argument on a malformed payload.
std::vector<ElementUpdate> decode_element_updates(
    std::span<const std::uint8_t> payload);

/// How flush() turns dirty slots into control transactions.
enum class HalWriteMode {
  kPerElement,  ///< One transaction per changed element (naive baseline).
  kBatched,     ///< One transaction per dirty (device, slot) per epoch.
};

/// SURFOS_HAL_BATCH env knob: unset or nonzero = kBatched (the default),
/// 0 = kPerElement (the pre-batching baseline, kept for A/B benching).
HalWriteMode hal_write_mode_from_env() noexcept;

/// What one flush() did, for StepTrace accounting and the fleet bench.
struct FlushStats {
  std::size_t transactions = 0;      ///< Config-write frames issued.
  std::size_t element_updates = 0;   ///< Elements whose wire codes changed.
  std::size_t writes_staged = 0;     ///< stage() calls this epoch.
  std::size_t writes_coalesced = 0;  ///< stage() calls absorbed by a later one.
  std::size_t writes_elided = 0;     ///< Dirty slots whose diff was empty.
  std::size_t selects = 0;           ///< kSelectConfig frames issued.
  Micros worst_delay_us = 0;         ///< Worst control delay among frames.
};

/// Per-epoch write-combining buffer. Not thread-safe: each orchestrator owns
/// one and runs its step cycle on one thread (fleet parallelism is per-site).
class WriteCombiner {
 public:
  /// Stages `config` as the final state of (driver, slot) this epoch; a later
  /// stage() for the same key replaces the pending config (coalescing). When
  /// `activate` is set, flush() also issues a kSelectConfig for the slot.
  /// The caller's ambient trace context is captured with the entry and
  /// reinstalled around the eventual frame build, so driver write spans keep
  /// carrying the staging intent's trace id across the deferred flush.
  void stage(SurfaceDriver& driver, std::uint16_t slot,
             surface::SurfaceConfig config, bool activate);

  bool empty() const noexcept { return pending_.empty(); }
  std::size_t staged() const noexcept { return staged_; }
  std::size_t coalesced() const noexcept { return coalesced_; }

  /// Issues the pending transactions in deterministic (device id, slot)
  /// order and clears the buffer. The caller advances the sim clock past
  /// `worst_delay_us` and polls the registry so the writes apply.
  FlushStats flush(HalWriteMode mode);

 private:
  struct Pending {
    SurfaceDriver* driver = nullptr;
    surface::SurfaceConfig config;
    bool activate = false;
    telemetry::TraceContext trace;  ///< Ambient context at stage() time.
  };
  std::map<std::pair<std::string, std::uint16_t>, Pending> pending_;
  std::size_t staged_ = 0;
  std::size_t coalesced_ = 0;
};

}  // namespace surfos::hal
