// Simulated control link: a unidirectional byte pipe with latency, loss and
// bit-corruption knobs. Drives the protocol layer the way a serial/UDP
// controller link would, and gives tests a place to inject failures.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "hal/clock.hpp"
#include "util/rng.hpp"

namespace surfos::hal {

struct LinkOptions {
  Micros latency_us = 200;
  double loss_probability = 0.0;     ///< Whole-datagram drop probability.
  double corrupt_probability = 0.0;  ///< Single-bit-flip probability.
  std::uint64_t seed = 7;
};

class ControlLink {
 public:
  /// `clock` must outlive the link.
  ControlLink(const SimClock* clock, LinkOptions options = {});

  /// Enqueue a datagram; it becomes receivable after the link latency.
  void send(std::span<const std::uint8_t> datagram);

  /// Datagrams whose delivery time has arrived, in order. Lost datagrams
  /// simply never appear; corrupted ones appear with a flipped bit.
  std::vector<std::vector<std::uint8_t>> receive_ready();

  std::size_t in_flight() const noexcept { return queue_.size(); }
  const SimClock& clock() const noexcept { return *clock_; }

  std::size_t sent_count() const noexcept { return sent_; }
  std::size_t dropped_count() const noexcept { return dropped_; }
  std::size_t corrupted_count() const noexcept { return corrupted_; }

 private:
  struct Pending {
    Micros deliver_at;
    std::vector<std::uint8_t> bytes;
  };

  const SimClock* clock_;
  LinkOptions options_;
  util::Rng rng_;
  std::deque<Pending> queue_;
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
  std::size_t corrupted_ = 0;
};

}  // namespace surfos::hal
