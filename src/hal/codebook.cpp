#include "hal/codebook.hpp"

namespace surfos::hal {

std::vector<surface::SurfaceConfig> build_steering_codebook(
    const surface::SurfacePanel& panel, const geom::Vec3& source,
    std::span<const geom::Vec3> targets, double frequency_hz) {
  std::vector<surface::SurfaceConfig> codebook;
  codebook.reserve(targets.size());
  for (const geom::Vec3& target : targets) {
    codebook.push_back(panel.focus_config(source, target, frequency_hz));
  }
  return codebook;
}

std::size_t load_steering_codebook(SurfaceDriver& driver,
                                   const geom::Vec3& source,
                                   std::span<const geom::Vec3> targets,
                                   double frequency_hz) {
  const auto codebook = build_steering_codebook(driver.panel(), source,
                                                targets, frequency_hz);
  std::size_t written = 0;
  for (std::size_t slot = 0;
       slot < codebook.size() && slot < driver.slot_count(); ++slot) {
    if (driver.write_config(static_cast<std::uint16_t>(slot),
                            codebook[slot]) == DriverStatus::kOk) {
      ++written;
    }
  }
  return written;
}

}  // namespace surfos::hal
