#include "hal/protocol.hpp"

#include "hal/crc32.hpp"

namespace surfos::hal {

namespace {
constexpr std::uint8_t kMagic0 = 0x5F;
constexpr std::uint8_t kMagic1 = 0x05;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MessageType::kWriteConfig) &&
         t <= static_cast<std::uint8_t>(MessageType::kWriteElements);
}
}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + frame.payload.size() + kCrcSize);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  put_u32(out, frame.sequence);
  out.push_back(static_cast<std::uint8_t>(frame.slot & 0xFF));
  out.push_back(static_cast<std::uint8_t>(frame.slot >> 8));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  put_u32(out, crc32(out));
  return out;
}

DecodeResult decode_frame(std::span<const std::uint8_t> bytes) {
  DecodeResult result;
  if (bytes.size() < kHeaderSize + kCrcSize) {
    result.error = DecodeError::kTruncated;
    return result;
  }
  if (bytes[0] != kMagic0 || bytes[1] != kMagic1) {
    // Resynchronize: skip one byte so the caller can scan forward.
    result.error = DecodeError::kBadMagic;
    result.consumed = 1;
    return result;
  }
  const std::uint32_t payload_len = get_u32(bytes, 10);
  const std::size_t total = kHeaderSize + payload_len + kCrcSize;
  if (bytes.size() < total) {
    result.error = DecodeError::kTruncated;
    return result;
  }
  result.consumed = total;
  if (bytes[2] != kProtocolVersion) {
    result.error = DecodeError::kBadVersion;
    return result;
  }
  if (!valid_type(bytes[3])) {
    result.error = DecodeError::kBadType;
    return result;
  }
  const std::uint32_t expected = get_u32(bytes, total - kCrcSize);
  if (crc32(bytes.subspan(0, total - kCrcSize)) != expected) {
    result.error = DecodeError::kBadCrc;
    return result;
  }
  Frame frame;
  frame.type = static_cast<MessageType>(bytes[3]);
  frame.sequence = get_u32(bytes, 4);
  frame.slot = static_cast<std::uint16_t>(
      bytes[8] | (static_cast<std::uint16_t>(bytes[9]) << 8));
  frame.payload.assign(bytes.begin() + kHeaderSize,
                       bytes.begin() + static_cast<std::ptrdiff_t>(
                                           kHeaderSize + payload_len));
  result.frame = std::move(frame);
  return result;
}

}  // namespace surfos::hal
