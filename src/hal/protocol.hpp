// Surface control-plane wire protocol.
//
// SurfOS talks to (possibly remote) surface controllers over a byte
// transport. Frames are explicit and checksummed so that the control plane
// can run at the edge or in the cloud (paper Section 1) with real link
// semantics: loss, delay, and corruption are survivable, and drivers only
// apply updates acknowledged end-to-end.
//
// Frame layout (little-endian):
//   0..1   magic 0x5F 0x05
//   2      version (1)
//   3      type (MessageType)
//   4..7   sequence number
//   8..9   slot (configuration slot index, when applicable)
//   10..13 payload length N
//   14..   payload (N bytes)
//   last 4 CRC-32 over bytes [0, 14 + N)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace surfos::hal {

enum class MessageType : std::uint8_t {
  kWriteConfig = 1,   ///< Payload: serialized SurfaceConfig for a slot.
  kSelectConfig = 2,  ///< Activate a stored slot. No payload.
  kQueryStatus = 3,   ///< Ask for an ACK with the active slot.
  kAck = 4,           ///< Payload: 2-byte active slot.
  kNack = 5,          ///< Payload: 1-byte error code.
  kWriteElements = 6, ///< Payload: sparse element updates for a slot (one
                      ///< write-combined control transaction; see hal/batch.hpp).
};

struct Frame {
  MessageType type = MessageType::kQueryStatus;
  std::uint32_t sequence = 0;
  std::uint16_t slot = 0;
  std::vector<std::uint8_t> payload;
};

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 14;
inline constexpr std::size_t kCrcSize = 4;

/// Serializes a frame (always succeeds).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

enum class DecodeError {
  kTruncated,
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadCrc,
};

struct DecodeResult {
  std::optional<Frame> frame;         ///< Set on success.
  std::optional<DecodeError> error;   ///< Set on failure.
  std::size_t consumed = 0;           ///< Bytes consumed from the buffer.
};

/// Attempts to decode one frame from the start of `bytes`. On kTruncated the
/// caller should wait for more bytes; other errors consume the bad frame's
/// bytes (or resynchronize past the bad magic).
DecodeResult decode_frame(std::span<const std::uint8_t> bytes);

}  // namespace surfos::hal
