// Unified surface driver API (paper 3.1 "Hardware Manager").
//
// Drivers mask hardware heterogeneity behind one programming interface whose
// currency is the element-wise SurfaceConfig: write_config() updates a
// locally stored configuration slot (asynchronously, through the control
// link — the control plane), select_config() switches the active slot (the
// cheap data-plane action an endpoint-feedback loop exercises), and the
// shift_phase()/set_amplitude() primitives mirror the paper's examples.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hal/clock.hpp"
#include "hal/link.hpp"
#include "hal/protocol.hpp"
#include "hal/spec.hpp"
#include "surface/config.hpp"
#include "surface/panel.hpp"

namespace surfos::hal {

enum class DriverStatus {
  kOk,
  kUnsupported,   ///< Operation not available on this hardware class.
  kBadSlot,       ///< Slot index out of range.
  kBadConfig,     ///< Configuration does not match the element count.
  kAlreadyFixed,  ///< Passive surface already fabricated.
};

constexpr const char* to_string(DriverStatus s) noexcept {
  switch (s) {
    case DriverStatus::kOk: return "ok";
    case DriverStatus::kUnsupported: return "unsupported";
    case DriverStatus::kBadSlot: return "bad-slot";
    case DriverStatus::kBadConfig: return "bad-config";
    case DriverStatus::kAlreadyFixed: return "already-fixed";
  }
  return "?";
}

/// One element's new state inside a kWriteElements payload (see hal/batch.hpp
/// for the codec and the write-combining transaction builder).
struct ElementUpdate {
  std::uint32_t index = 0;
  double phase = 0.0;      ///< Radians, wrapped to [0, 2*pi).
  double amplitude = 1.0;  ///< [0, 1].
};

class SurfaceDriver {
 public:
  SurfaceDriver(std::string device_id, const surface::SurfacePanel* panel,
                HardwareSpec spec);
  virtual ~SurfaceDriver() = default;
  SurfaceDriver(const SurfaceDriver&) = delete;
  SurfaceDriver& operator=(const SurfaceDriver&) = delete;

  const std::string& device_id() const noexcept { return device_id_; }
  const surface::SurfacePanel& panel() const noexcept { return *panel_; }
  const HardwareSpec& spec() const noexcept { return spec_; }

  /// Writes a configuration into a storage slot. May apply asynchronously;
  /// kOk means accepted for delivery.
  virtual DriverStatus write_config(std::uint16_t slot,
                                    const surface::SurfaceConfig& config) = 0;

  /// Writes a sparse element patch into a storage slot as one control
  /// transaction. Only meaningful for element-granular hardware (group
  /// projections are not element-wise); drivers that cannot honor the
  /// sparse path return kUnsupported and callers fall back to a full
  /// write_config. May apply asynchronously; kOk means accepted.
  virtual DriverStatus write_elements(std::uint16_t slot,
                                      std::span<const ElementUpdate> updates) {
    (void)slot;
    (void)updates;
    return DriverStatus::kUnsupported;
  }

  /// Activates a stored slot.
  virtual DriverStatus select_config(std::uint16_t slot) = 0;

  /// Processes any in-flight control traffic; call when simulated time has
  /// advanced.
  virtual void poll() {}

  /// The configuration currently actuating the hardware (after granularity /
  /// quantization projection).
  const surface::SurfaceConfig& active_config() const noexcept {
    return active_config_;
  }
  std::uint16_t active_slot() const noexcept { return active_slot_; }

  /// The stored (not necessarily active) configuration of a slot.
  const surface::SurfaceConfig& stored_config(std::uint16_t slot) const;
  std::size_t slot_count() const noexcept { return slots_.size(); }

  // --- Convenience primitives over the active slot ------------------------

  /// Adds a uniform phase offset to the active configuration.
  DriverStatus shift_phase(double radians);
  /// Replaces the per-element amplitudes of the active configuration.
  DriverStatus set_amplitude(std::span<const double> amplitudes);

 protected:
  void init_slots(std::size_t count);
  /// Stores `config` (projected to what the hardware realizes) into a slot
  /// and refreshes the active config when the slot is active.
  void commit_slot(std::uint16_t slot, const surface::SurfaceConfig& config);
  void activate_slot(std::uint16_t slot);

 private:
  std::string device_id_;
  const surface::SurfacePanel* panel_;
  HardwareSpec spec_;
  std::vector<surface::SurfaceConfig> slots_;
  surface::SurfaceConfig active_config_;
  std::uint16_t active_slot_ = 0;
};

/// Runtime-reconfigurable surface behind a lossy/latent control link.
class ProgrammableSurfaceDriver final : public SurfaceDriver {
 public:
  ProgrammableSurfaceDriver(std::string device_id,
                            const surface::SurfacePanel* panel,
                            HardwareSpec spec, const SimClock* clock,
                            LinkOptions link_options = {});

  DriverStatus write_config(std::uint16_t slot,
                            const surface::SurfaceConfig& config) override;
  DriverStatus write_elements(std::uint16_t slot,
                              std::span<const ElementUpdate> updates) override;
  DriverStatus select_config(std::uint16_t slot) override;
  void poll() override;

  std::size_t frames_applied() const noexcept { return frames_applied_; }
  std::size_t frames_rejected() const noexcept { return frames_rejected_; }
  ControlLink& link() noexcept { return link_; }

 private:
  ControlLink link_;
  std::uint32_t next_sequence_ = 1;
  std::size_t frames_applied_ = 0;
  std::size_t frames_rejected_ = 0;
};

/// Fabrication-time-configurable surface: one slot, written exactly once.
class PassiveSurfaceDriver final : public SurfaceDriver {
 public:
  PassiveSurfaceDriver(std::string device_id,
                       const surface::SurfacePanel* panel, HardwareSpec spec);

  /// The single fabrication-time write.
  DriverStatus fabricate(const surface::SurfaceConfig& config);

  DriverStatus write_config(std::uint16_t slot,
                            const surface::SurfaceConfig& config) override;
  DriverStatus select_config(std::uint16_t slot) override;

  bool fabricated() const noexcept { return fabricated_; }

 private:
  bool fabricated_ = false;
};

/// Builds the natural spec for a catalog design (band response from its
/// band(s), control delay by hardware class, slots by granularity).
HardwareSpec spec_for_panel(const surface::SurfacePanel& panel, em::Band band);

}  // namespace surfos::hal
