#include "hal/feedback.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace surfos::hal {

SweepResult CodebookSelector::sweep_and_select(SurfaceDriver& driver,
                                               const SlotProbe& probe) {
  if (!probe) throw std::invalid_argument("CodebookSelector: null probe");
  SURFOS_SPAN("hal.feedback.sweep");
  SURFOS_COUNT("hal.feedback.sweeps");
  SURFOS_COUNT_N("hal.feedback.probes", driver.slot_count());
  SweepResult result;
  result.per_slot_metric.resize(driver.slot_count());
  const std::uint16_t current = driver.active_slot();
  bool first = true;
  for (std::uint16_t slot = 0; slot < driver.slot_count(); ++slot) {
    const double metric = probe(slot);
    result.per_slot_metric[slot] = metric;
    if (first || metric > result.best_metric) {
      result.best_metric = metric;
      result.best_slot = slot;
      first = false;
    }
  }
  if (driver.spec().is_passive()) return result;
  if (result.best_slot != current &&
      result.best_metric >
          result.per_slot_metric[current] + switch_margin_) {
    driver.select_config(result.best_slot);
    ++switches_;
    SURFOS_COUNT("hal.feedback.switches");
  }
  return result;
}

}  // namespace surfos::hal
