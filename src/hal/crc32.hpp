// CRC-32 (IEEE 802.3 polynomial) for control-protocol frame integrity.
#pragma once

#include <cstdint>
#include <span>

namespace surfos::hal {

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

}  // namespace surfos::hal
