#include "hal/driver.hpp"

#include <stdexcept>
#include <vector>

#include "hal/batch.hpp"

#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace surfos::hal {

SurfaceDriver::SurfaceDriver(std::string device_id,
                             const surface::SurfacePanel* panel,
                             HardwareSpec spec)
    : device_id_(std::move(device_id)), panel_(panel), spec_(std::move(spec)) {
  if (panel_ == nullptr) throw std::invalid_argument("SurfaceDriver: null panel");
  init_slots(spec_.config_slots == 0 ? 1 : spec_.config_slots);
}

void SurfaceDriver::init_slots(std::size_t count) {
  slots_.assign(count, surface::SurfaceConfig(panel_->element_count()));
  active_config_ = panel_->realizable(slots_[0]);
  active_slot_ = 0;
}

const surface::SurfaceConfig& SurfaceDriver::stored_config(
    std::uint16_t slot) const {
  if (slot >= slots_.size()) throw std::out_of_range("SurfaceDriver: slot");
  return slots_[slot];
}

void SurfaceDriver::commit_slot(std::uint16_t slot,
                                const surface::SurfaceConfig& config) {
  slots_.at(slot) = panel_->realizable(config);
  if (slot == active_slot_) active_config_ = slots_[slot];
}

void SurfaceDriver::activate_slot(std::uint16_t slot) {
  active_slot_ = slot;
  active_config_ = slots_.at(slot);
}

DriverStatus SurfaceDriver::shift_phase(double radians) {
  surface::SurfaceConfig shifted = active_config_;
  shifted.shift_all_phases(radians);
  return write_config(active_slot_, shifted);
}

DriverStatus SurfaceDriver::set_amplitude(std::span<const double> amplitudes) {
  if (amplitudes.size() != panel().element_count()) {
    return DriverStatus::kBadConfig;
  }
  if (!panel().design().amplitude_control) return DriverStatus::kUnsupported;
  surface::SurfaceConfig updated = active_config_;
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    updated.set_amplitude(i, amplitudes[i]);
  }
  return write_config(active_slot_, updated);
}

// --- ProgrammableSurfaceDriver ----------------------------------------------

ProgrammableSurfaceDriver::ProgrammableSurfaceDriver(
    std::string device_id, const surface::SurfacePanel* panel,
    HardwareSpec spec, const SimClock* clock, LinkOptions link_options)
    : SurfaceDriver(std::move(device_id), panel, [&] {
        return spec;
      }()),
      link_(clock, [&] {
        // Control delay is modeled as link latency end to end.
        link_options.latency_us = spec.control_delay_us;
        return link_options;
      }()) {}

DriverStatus ProgrammableSurfaceDriver::write_config(
    std::uint16_t slot, const surface::SurfaceConfig& config) {
  if (slot >= slot_count()) return DriverStatus::kBadSlot;
  if (config.size() != panel().element_count()) return DriverStatus::kBadConfig;
  SURFOS_TRACE_SPAN("hal.driver.write_config");
  SURFOS_COUNT("hal.driver.config_writes");
  Frame frame;
  frame.type = MessageType::kWriteConfig;
  frame.sequence = next_sequence_++;
  frame.slot = slot;
  frame.payload = config.serialize();
  link_.send(encode_frame(frame));
  return DriverStatus::kOk;
}

DriverStatus ProgrammableSurfaceDriver::write_elements(
    std::uint16_t slot, std::span<const ElementUpdate> updates) {
  if (slot >= slot_count()) return DriverStatus::kBadSlot;
  for (const ElementUpdate& u : updates) {
    if (u.index >= panel().element_count()) return DriverStatus::kBadConfig;
  }
  SURFOS_TRACE_SPAN("hal.driver.write_elements");
  // A sparse patch is still one config-write transaction on the control
  // link; it shares the transaction counter with full-frame writes so the
  // StepTrace / telemetry view of "control transactions" is mode-agnostic.
  SURFOS_COUNT("hal.driver.config_writes");
  SURFOS_COUNT("hal.driver.element_writes");
  SURFOS_COUNT_N("hal.driver.element_updates", updates.size());
  Frame frame;
  frame.type = MessageType::kWriteElements;
  frame.sequence = next_sequence_++;
  frame.slot = slot;
  frame.payload = encode_element_updates(updates);
  link_.send(encode_frame(frame));
  return DriverStatus::kOk;
}

DriverStatus ProgrammableSurfaceDriver::select_config(std::uint16_t slot) {
  if (slot >= slot_count()) return DriverStatus::kBadSlot;
  SURFOS_COUNT("hal.driver.config_selects");
  Frame frame;
  frame.type = MessageType::kSelectConfig;
  frame.sequence = next_sequence_++;
  frame.slot = slot;
  link_.send(encode_frame(frame));
  return DriverStatus::kOk;
}

void ProgrammableSurfaceDriver::poll() {
  const std::size_t applied_before = frames_applied_;
  const std::size_t rejected_before = frames_rejected_;
  for (const auto& datagram : link_.receive_ready()) {
    const DecodeResult decoded = decode_frame(datagram);
    if (!decoded.frame) {
      ++frames_rejected_;
      SURFOS_DEBUG("hal") << device_id() << ": rejected control frame";
      continue;
    }
    const Frame& frame = *decoded.frame;
    switch (frame.type) {
      case MessageType::kWriteConfig: {
        if (frame.slot >= slot_count()) {
          ++frames_rejected_;
          break;
        }
        try {
          commit_slot(frame.slot,
                      surface::SurfaceConfig::deserialize(frame.payload));
          ++frames_applied_;
        } catch (const std::invalid_argument&) {
          ++frames_rejected_;
        }
        break;
      }
      case MessageType::kWriteElements: {
        if (frame.slot >= slot_count()) {
          ++frames_rejected_;
          break;
        }
        try {
          const std::vector<ElementUpdate> updates =
              decode_element_updates(frame.payload);
          surface::SurfaceConfig patched = stored_config(frame.slot);
          bool in_range = true;
          for (const ElementUpdate& u : updates) {
            if (u.index >= patched.size()) {
              in_range = false;
              break;
            }
          }
          if (!in_range) {
            ++frames_rejected_;
            break;
          }
          for (const ElementUpdate& u : updates) {
            patched.set_phase(u.index, u.phase);
            patched.set_amplitude(u.index, u.amplitude);
          }
          commit_slot(frame.slot, patched);
          ++frames_applied_;
        } catch (const std::invalid_argument&) {
          ++frames_rejected_;
        }
        break;
      }
      case MessageType::kSelectConfig:
        if (frame.slot < slot_count()) {
          activate_slot(frame.slot);
          ++frames_applied_;
        } else {
          ++frames_rejected_;
        }
        break;
      default:
        ++frames_rejected_;
        break;
    }
  }
  SURFOS_COUNT_N("hal.driver.frames_applied", frames_applied_ - applied_before);
  SURFOS_COUNT_N("hal.driver.frames_rejected",
                 frames_rejected_ - rejected_before);
}

// --- PassiveSurfaceDriver ----------------------------------------------------

PassiveSurfaceDriver::PassiveSurfaceDriver(std::string device_id,
                                           const surface::SurfacePanel* panel,
                                           HardwareSpec spec)
    : SurfaceDriver(std::move(device_id), panel, [&] {
        spec.reconfigurability = surface::Reconfigurability::kPassive;
        spec.control_delay_us = kInfiniteDelay;
        spec.config_slots = 1;
        spec.power_mw = 0.0;
        return spec;
      }()) {}

DriverStatus PassiveSurfaceDriver::fabricate(
    const surface::SurfaceConfig& config) {
  if (fabricated_) return DriverStatus::kAlreadyFixed;
  if (config.size() != panel().element_count()) return DriverStatus::kBadConfig;
  commit_slot(0, config);
  fabricated_ = true;
  return DriverStatus::kOk;
}

DriverStatus PassiveSurfaceDriver::write_config(
    std::uint16_t slot, const surface::SurfaceConfig& config) {
  if (slot != 0) return DriverStatus::kBadSlot;
  if (fabricated_) return DriverStatus::kAlreadyFixed;
  return fabricate(config);
}

DriverStatus PassiveSurfaceDriver::select_config(std::uint16_t slot) {
  return slot == 0 ? DriverStatus::kOk : DriverStatus::kBadSlot;
}

// --- Spec synthesis ----------------------------------------------------------

HardwareSpec spec_for_panel(const surface::SurfacePanel& panel, em::Band band) {
  HardwareSpec spec;
  spec.model = panel.id();
  spec.op_mode = panel.op_mode();
  spec.reconfigurability = panel.reconfigurability();
  spec.granularity = panel.granularity();
  spec.band_response[band] = 0.9;
  if (spec.reconfigurability == surface::Reconfigurability::kPassive) {
    spec.control_delay_us = kInfiniteDelay;
    spec.config_slots = 1;
    spec.power_mw = 0.0;
  } else {
    // Element-wise designs shift more state per update; column/row-wise
    // hardware has shorter update paths.
    spec.control_delay_us =
        panel.granularity() == surface::ControlGranularity::kElement ? 1000
                                                                     : 200;
    spec.config_slots = 8;
    spec.power_mw = 0.05 * static_cast<double>(panel.element_count());
  }
  return spec;
}

}  // namespace surfos::hal
