#include "hal/batch.hpp"

#include <cmath>
#include <stdexcept>

#include "surface/types.hpp"
#include "telemetry/telemetry.hpp"
#include "core/config.hpp"
#include "util/units.hpp"

namespace surfos::hal {

namespace {

constexpr std::size_t kRecordSize = 7;  // u32 index + u16 phase + u8 amp

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

std::uint16_t phase_code(double radians) noexcept {
  return static_cast<std::uint16_t>(
      std::lround(radians / util::kTwoPi * 65535.0));
}

std::uint8_t amplitude_code(double amplitude) noexcept {
  return static_cast<std::uint8_t>(std::lround(amplitude * 255.0));
}

std::vector<std::uint8_t> encode_element_updates(
    std::span<const ElementUpdate> updates) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(4 + updates.size() * kRecordSize);
  put_u32(bytes, static_cast<std::uint32_t>(updates.size()));
  for (const ElementUpdate& u : updates) {
    put_u32(bytes, u.index);
    const std::uint16_t phase = phase_code(u.phase);
    bytes.push_back(static_cast<std::uint8_t>(phase & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>(phase >> 8));
    bytes.push_back(amplitude_code(u.amplitude));
  }
  return bytes;
}

std::vector<ElementUpdate> decode_element_updates(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) {
    throw std::invalid_argument("ElementUpdate: short buffer");
  }
  const std::uint32_t n = get_u32(payload, 0);
  if (payload.size() != 4 + static_cast<std::size_t>(n) * kRecordSize) {
    throw std::invalid_argument("ElementUpdate: truncated buffer");
  }
  std::vector<ElementUpdate> updates(n);
  std::size_t at = 4;
  for (std::uint32_t i = 0; i < n; ++i) {
    updates[i].index = get_u32(payload, at);
    const std::uint16_t phase = static_cast<std::uint16_t>(
        payload[at + 4] | (static_cast<std::uint16_t>(payload[at + 5]) << 8));
    updates[i].phase = static_cast<double>(phase) / 65535.0 * util::kTwoPi;
    updates[i].amplitude = static_cast<double>(payload[at + 6]) / 255.0;
    at += kRecordSize;
  }
  return updates;
}

HalWriteMode hal_write_mode_from_env() noexcept {
  // Routed through the config snapshot (core/config.hpp) so a daemon-start
  // or set-knob SURFOS_HAL_BATCH applies to every orchestrator built after
  // it; the mode is latched into OrchestratorOptions at construction.
  return core::knob("SURFOS_HAL_BATCH", 1, 0) == 0 ? HalWriteMode::kPerElement
                                                   : HalWriteMode::kBatched;
}

// --- WriteCombiner -----------------------------------------------------------

void WriteCombiner::stage(SurfaceDriver& driver, std::uint16_t slot,
                          surface::SurfaceConfig config, bool activate) {
  ++staged_;
  auto [it, inserted] = pending_.try_emplace({driver.device_id(), slot});
  if (!inserted) ++coalesced_;
  it->second.driver = &driver;
  it->second.config = std::move(config);
  it->second.activate = it->second.activate || activate;
  it->second.trace = telemetry::current_trace();
}

FlushStats WriteCombiner::flush(HalWriteMode mode) {
  FlushStats stats;
  stats.writes_staged = staged_;
  stats.writes_coalesced = coalesced_;
  for (auto& [key, pending] : pending_) {
    // Reattribute the deferred frame build to the intent that staged it.
    telemetry::TraceScope trace_scope(pending.trace);
    SurfaceDriver& driver = *pending.driver;
    const std::uint16_t slot = key.second;
    const surface::SurfaceConfig& target = pending.config;
    const bool sized = target.size() == driver.panel().element_count();

    // Diff against the stored slot in wire-code space: an element whose
    // serialized u16/u8 codes are unchanged would be transmitted bit-for-bit
    // identically by a full frame, so skipping it cannot change the final
    // hardware state (stored values are decode-side fixed points; see
    // hal/batch.hpp header comment).
    std::vector<ElementUpdate> changed;
    if (sized) {
      const surface::SurfaceConfig& stored = driver.stored_config(slot);
      for (std::size_t i = 0; i < target.size(); ++i) {
        if (phase_code(target.phase(i)) != phase_code(stored.phase(i)) ||
            amplitude_code(target.amplitude(i)) !=
                amplitude_code(stored.amplitude(i))) {
          changed.push_back({static_cast<std::uint32_t>(i), target.phase(i),
                             target.amplitude(i)});
        }
      }
    }

    const bool element_granular =
        driver.spec().granularity == surface::ControlGranularity::kElement;
    const auto note_write = [&](DriverStatus status, std::size_t elements) {
      if (status != DriverStatus::kOk) return;
      ++stats.transactions;
      stats.element_updates += elements;
      const Micros delay = driver.spec().control_delay_us;
      if (!driver.spec().is_passive() && delay > stats.worst_delay_us) {
        stats.worst_delay_us = delay;
      }
    };

    if (!sized) {
      // Let the driver report the size mismatch exactly as an unbatched
      // write_config would have.
      note_write(driver.write_config(slot, target), 0);
    } else if (changed.empty()) {
      ++stats.writes_elided;
    } else if (mode == HalWriteMode::kPerElement) {
      // Naive baseline: one control transaction per changed element.
      for (const ElementUpdate& u : changed) {
        DriverStatus status = DriverStatus::kUnsupported;
        if (element_granular) {
          status = driver.write_elements(slot, std::span(&u, 1));
        }
        if (status == DriverStatus::kUnsupported) {
          status = driver.write_config(slot, target);
        }
        note_write(status, 1);
      }
    } else {
      // Batched: one transaction per dirty (device, slot). Ride the sparse
      // frame only when it is actually smaller than a full one (record
      // layouts: 7 bytes/changed element vs 3 bytes/element full frame) and
      // the hardware realizes configs element-wise.
      DriverStatus status = DriverStatus::kUnsupported;
      if (element_granular &&
          changed.size() * kRecordSize < target.size() * 3) {
        status = driver.write_elements(slot, changed);
      }
      if (status == DriverStatus::kUnsupported) {
        status = driver.write_config(slot, target);
      }
      note_write(status, changed.size());
    }

    if (pending.activate) {
      if (driver.select_config(slot) == DriverStatus::kOk) {
        ++stats.selects;
        const Micros delay = driver.spec().control_delay_us;
        if (!driver.spec().is_passive() && delay > stats.worst_delay_us) {
          stats.worst_delay_us = delay;
        }
      }
    }
  }
  pending_.clear();
  staged_ = 0;
  coalesced_ = 0;
  SURFOS_COUNT_N("hal.batch.writes_staged", stats.writes_staged);
  SURFOS_COUNT_N("hal.batch.writes_coalesced", stats.writes_coalesced);
  SURFOS_COUNT_N("hal.batch.writes_elided", stats.writes_elided);
  SURFOS_COUNT_N("hal.batch.transactions", stats.transactions);
  SURFOS_COUNT_N("hal.batch.element_updates", stats.element_updates);
  return stats;
}

}  // namespace surfos::hal
