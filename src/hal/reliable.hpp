// Reliable control channel: stop-and-go-back ARQ over lossy ControlLinks.
//
// SurfOS may run at the edge or in the cloud (paper Section 1), so the
// control path to a surface controller can lose or corrupt datagrams. The
// ReliableLink adds sequence numbers, cumulative acknowledgements, and
// timer-driven retransmission on top of the raw protocol frames, and the
// ReliableSurfaceDriver is a drop-in SurfaceDriver whose configuration
// writes survive loss (at the cost of extra latency per retransmission).
#pragma once

#include <deque>
#include <functional>
#include <map>

#include "hal/driver.hpp"
#include "hal/link.hpp"
#include "hal/protocol.hpp"

namespace surfos::hal {

struct ReliableOptions {
  LinkOptions forward;   ///< Controller -> surface datagrams.
  LinkOptions reverse;   ///< Surface -> controller acknowledgements.
  Micros rto_us = 2000;  ///< Retransmission timeout.
  std::size_t max_retransmissions = 16;  ///< Per frame, before giving up.
};

/// One direction of reliable frame delivery with an ack backchannel.
class ReliableLink {
 public:
  using DeliverFn = std::function<void(const Frame&)>;

  ReliableLink(const SimClock* clock, ReliableOptions options = {});

  /// Receiver callback, invoked in order, exactly once per frame.
  void set_receiver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Queues a frame for reliable delivery (sequence assigned internally;
  /// any sequence already present in the frame is overwritten).
  void send(Frame frame);

  /// Pumps both directions: delivers arrived frames (in order, deduplicated),
  /// emits acknowledgements, processes acks, and retransmits anything older
  /// than the RTO. Call whenever simulated time advances.
  void poll();

  std::size_t delivered_count() const noexcept { return delivered_; }
  std::size_t retransmission_count() const noexcept { return retransmissions_; }
  std::size_t duplicate_count() const noexcept { return duplicates_; }
  std::size_t abandoned_count() const noexcept { return abandoned_; }
  std::size_t unacked_count() const noexcept { return in_flight_.size(); }

 private:
  struct Outstanding {
    std::vector<std::uint8_t> bytes;
    Micros last_sent = 0;
    std::size_t attempts = 0;
  };

  void emit_ack();

  const SimClock* clock_;
  ReliableOptions options_;
  ControlLink forward_;
  ControlLink reverse_;
  DeliverFn deliver_;

  std::uint32_t next_seq_ = 1;
  std::map<std::uint32_t, Outstanding> in_flight_;

  std::uint32_t expected_seq_ = 1;            ///< Receiver side.
  std::map<std::uint32_t, Frame> reorder_;    ///< Early (out-of-order) frames.

  std::size_t delivered_ = 0;
  std::size_t retransmissions_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t abandoned_ = 0;
};

/// A programmable surface driver whose control path is the reliable channel:
/// configuration writes survive datagram loss/corruption.
class ReliableSurfaceDriver final : public SurfaceDriver {
 public:
  ReliableSurfaceDriver(std::string device_id,
                        const surface::SurfacePanel* panel, HardwareSpec spec,
                        const SimClock* clock, ReliableOptions options = {});

  DriverStatus write_config(std::uint16_t slot,
                            const surface::SurfaceConfig& config) override;
  DriverStatus select_config(std::uint16_t slot) override;
  void poll() override;

  const ReliableLink& link() const noexcept { return link_; }

 private:
  void apply(const Frame& frame);

  ReliableLink link_;
  std::size_t frames_applied_ = 0;
};

}  // namespace surfos::hal
