// Device registry: SurfOS's inventory of surface and non-surface hardware
// across the managed environment (paper 3.1: surfaces, plus "sensors, APs,
// base stations" whose feedback guides reconfiguration). Surfaces can be
// added incrementally over time — the paper's incremental deployment case —
// and removed when decommissioned.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "em/band.hpp"
#include "geom/vec3.hpp"
#include "hal/driver.hpp"

namespace surfos::hal {

enum class EndpointKind { kAccessPoint, kClient, kSensor, kBaseStation };

constexpr const char* to_string(EndpointKind k) noexcept {
  switch (k) {
    case EndpointKind::kAccessPoint: return "access-point";
    case EndpointKind::kClient: return "client";
    case EndpointKind::kSensor: return "sensor";
    case EndpointKind::kBaseStation: return "base-station";
  }
  return "?";
}

/// Non-surface hardware SurfOS interacts with.
struct EndpointDevice {
  std::string id;
  EndpointKind kind = EndpointKind::kClient;
  geom::Vec3 position;
  em::Band band = em::Band::k28GHz;
  /// Latest reported signal measurement (RSS dBm etc.), when the device
  /// feeds measurements back to SurfOS.
  std::optional<double> last_report;
};

class DeviceRegistry {
 public:
  /// Registers a surface driver; the id must be unique. Returns the id.
  const std::string& add_surface(std::unique_ptr<SurfaceDriver> driver);

  /// Removes a surface (decommissioning). Returns false if unknown.
  bool remove_surface(const std::string& device_id);

  SurfaceDriver* find_surface(const std::string& device_id) noexcept;
  const SurfaceDriver* find_surface(const std::string& device_id) const noexcept;

  std::vector<SurfaceDriver*> surfaces();
  std::vector<const SurfaceDriver*> surfaces() const;

  /// Surfaces that respond meaningfully on a band (spec response >= 0.5).
  std::vector<SurfaceDriver*> surfaces_on_band(em::Band band);

  /// Programmable surfaces only.
  std::vector<SurfaceDriver*> programmable_surfaces();

  void add_endpoint(EndpointDevice endpoint);
  bool remove_endpoint(const std::string& id);
  EndpointDevice* find_endpoint(const std::string& id) noexcept;
  const EndpointDevice* find_endpoint(const std::string& id) const noexcept;
  const std::vector<EndpointDevice>& endpoints() const noexcept {
    return endpoints_;
  }

  /// Drains in-flight control traffic on every surface driver.
  void poll_all();

  std::size_t surface_count() const noexcept { return drivers_.size(); }

  /// Surfaces whose off-band blocking would degrade another network's band
  /// (the paper's 2.4 GHz-surface-blocks-5 GHz-Wi-Fi hazard check): returns
  /// surfaces NOT tuned for `band` whose response on it is below `threshold`.
  std::vector<const SurfaceDriver*> blocking_hazards(em::Band band,
                                                     double threshold = 0.7) const;

 private:
  std::vector<std::unique_ptr<SurfaceDriver>> drivers_;
  std::vector<EndpointDevice> endpoints_;
};

}  // namespace surfos::hal
