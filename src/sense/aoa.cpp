#include "sense/aoa.hpp"

#include <cmath>
#include <stdexcept>

#include "sense/eigen.hpp"
#include "sense/steering.hpp"

namespace surfos::sense {

namespace {
constexpr double kSpectrumFloor = 1e-18;
}

std::vector<double> beamscan_spectrum(const em::CMat& steering,
                                      const em::CVec& v) {
  if (steering.cols() != v.size()) {
    throw std::invalid_argument("beamscan_spectrum: size mismatch");
  }
  std::vector<double> out(steering.rows());
  for (std::size_t b = 0; b < steering.rows(); ++b) {
    em::Cx s{};
    for (std::size_t i = 0; i < v.size(); ++i) {
      s += std::conj(steering(b, i)) * v[i];
    }
    out[b] = std::norm(s);
  }
  return out;
}

std::vector<double> music_spectrum(const em::CMat& steering,
                                   const em::CMat& snapshots,
                                   std::size_t n_sources) {
  const std::size_t n = steering.cols();
  if (snapshots.cols() != n) {
    throw std::invalid_argument("music_spectrum: element count mismatch");
  }
  if (n_sources == 0 || n_sources >= n) {
    throw std::invalid_argument("music_spectrum: bad source count");
  }
  // Sample covariance R = E[x x^H]: R(i, k) = sum_s x_si * conj(x_sk).
  // (The transposed form conj(x_i) * x_k would put conj(a) in the signal
  // subspace and mirror the spectrum for a centered array.)
  em::CMat r(n, n);
  for (std::size_t s = 0; s < snapshots.rows(); ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const em::Cx xi = snapshots(s, i);
      for (std::size_t k = i; k < n; ++k) {
        r(i, k) += xi * std::conj(snapshots(s, k));
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(snapshots.rows());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = i; k < n; ++k) r(i, k) *= inv;
  }
  const EigenResult eig = hermitian_eigen(r);
  // Noise subspace: eigenvectors of the n - n_sources smallest eigenvalues.
  const std::size_t noise_dim = n - n_sources;
  std::vector<double> out(steering.rows());
  for (std::size_t b = 0; b < steering.rows(); ++b) {
    double denom = 0.0;
    for (std::size_t e = 0; e < noise_dim; ++e) {
      em::Cx proj{};
      for (std::size_t i = 0; i < n; ++i) {
        proj += std::conj(eig.vectors(i, e)) * steering(b, i);
      }
      denom += std::norm(proj);
    }
    out[b] = 1.0 / std::fmax(denom, kSpectrumFloor);
  }
  return out;
}

double spectrum_peak(const std::vector<double>& angles,
                     const std::vector<double>& spectrum) {
  if (angles.size() != spectrum.size() || angles.empty()) {
    throw std::invalid_argument("spectrum_peak: bad input");
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < spectrum.size(); ++i) {
    if (spectrum[i] > spectrum[best]) best = i;
  }
  if (best == 0 || best + 1 == spectrum.size()) return angles[best];
  // Quadratic interpolation through the peak and its neighbors.
  const double y0 = spectrum[best - 1];
  const double y1 = spectrum[best];
  const double y2 = spectrum[best + 1];
  const double denom = y0 - 2.0 * y1 + y2;
  if (std::fabs(denom) < 1e-30) return angles[best];
  const double delta = 0.5 * (y0 - y2) / denom;
  const double step = angles[best + 1] - angles[best];
  return angles[best] + delta * step;
}

std::vector<double> normalize_spectrum(std::vector<double> spectrum) {
  double total = 0.0;
  for (double& p : spectrum) {
    if (p < 0.0) p = 0.0;
    total += p;
  }
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(spectrum.size());
    for (double& p : spectrum) p = uniform;
    return spectrum;
  }
  for (double& p : spectrum) p /= total;
  return spectrum;
}

double cross_entropy(const std::vector<double>& target,
                     const std::vector<double>& estimated) {
  if (target.size() != estimated.size()) {
    throw std::invalid_argument("cross_entropy: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < target.size(); ++i) {
    sum -= target[i] * std::log(std::fmax(estimated[i], kSpectrumFloor));
  }
  return sum;
}

AoaSensingModel::AoaSensingModel(const surface::SurfacePanel* panel,
                                 double frequency_hz, std::size_t bins,
                                 double half_span_rad)
    : panel_(panel) {
  if (panel_ == nullptr) {
    throw std::invalid_argument("AoaSensingModel: null panel");
  }
  angles_ = angle_grid(-half_span_rad, half_span_rad, bins);
  steering_ = steering_matrix(*panel_, angles_, frequency_hz);
}

std::vector<double> AoaSensingModel::spectrum(const em::CVec& v) const {
  return beamscan_spectrum(steering_, v);
}

double AoaSensingModel::estimate_azimuth(const em::CVec& v) const {
  return spectrum_peak(angles_, spectrum(v));
}

std::vector<double> AoaSensingModel::target_distribution(
    double true_azimuth_rad, double sigma_rad) const {
  std::vector<double> q(angles_.size());
  for (std::size_t b = 0; b < angles_.size(); ++b) {
    const double d = (angles_[b] - true_azimuth_rad) / sigma_rad;
    q[b] = std::exp(-0.5 * d * d);
  }
  return normalize_spectrum(std::move(q));
}

double AoaSensingModel::loss(const em::CVec& c, const em::CVec& g,
                             const std::vector<double>& target,
                             std::span<double> grad_phases) const {
  const std::size_t n = panel_->element_count();
  if (c.size() != n || g.size() != n || target.size() != angles_.size()) {
    throw std::invalid_argument("AoaSensingModel::loss: size mismatch");
  }
  const bool want_grad = !grad_phases.empty();
  if (want_grad && grad_phases.size() != n) {
    throw std::invalid_argument("AoaSensingModel::loss: gradient size");
  }

  // v = c .* g; s_b = a_b^H v; P_b = |s_b|^2; p = P / sum(P);
  // L = -sum q_b log p_b = -sum q_b log P_b + log sum(P).
  em::CVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = c[i] * g[i];
  const std::size_t bins = angles_.size();
  em::CVec s(bins);
  std::vector<double> power(bins);
  double total = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    em::Cx sb{};
    for (std::size_t i = 0; i < n; ++i) sb += std::conj(steering_(b, i)) * v[i];
    s[b] = sb;
    power[b] = std::norm(sb) + kSpectrumFloor;
    total += power[b];
  }
  double loss = std::log(total);
  for (std::size_t b = 0; b < bins; ++b) {
    loss -= target[b] * std::log(power[b]);
  }

  if (want_grad) {
    // dL/dP_b = 1/total - q_b / P_b ;  dP_b/dphi_i = 2 Re(conj(s_b) *
    // conj(a_bi) * j * v_i). Accumulate over bins.
    for (std::size_t i = 0; i < n; ++i) grad_phases[i] = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
      const double dl_dp = 1.0 / total - target[b] / power[b];
      const em::Cx sb_conj = std::conj(s[b]);
      for (std::size_t i = 0; i < n; ++i) {
        const em::Cx ds = std::conj(steering_(b, i)) * em::Cx{0.0, 1.0} * v[i];
        grad_phases[i] += dl_dp * 2.0 * (sb_conj * ds).real();
      }
    }
  }
  return loss;
}

}  // namespace surfos::sense
