#include "sense/motion.hpp"

#include <cmath>
#include <stdexcept>

namespace surfos::sense {

double channel_decorrelation(const em::CVec& a, const em::CVec& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("channel_decorrelation: size mismatch");
  }
  const double pa = em::power(a);
  const double pb = em::power(b);
  if (pa < 1e-30 || pb < 1e-30) return 0.0;
  const em::Cx cross = em::inner(a, b);
  return 1.0 - std::abs(cross) / std::sqrt(pa * pb);
}

MotionDetector::MotionDetector(MotionDetectorOptions options)
    : options_(options) {}

void MotionDetector::reset() {
  previous_.clear();
  last_score_ = 0.0;
  baseline_ = 0.0;
  baseline_samples_ = 0;
  consecutive_hits_ = 0;
}

bool MotionDetector::update(const em::CVec& snapshot) {
  if (previous_.empty()) {
    previous_ = snapshot;
    return false;
  }
  last_score_ = channel_decorrelation(previous_, snapshot);
  previous_ = snapshot;

  if (baseline_samples_ < options_.calibration_frames) {
    // Running mean of the quiescent decorrelation (thermal drift etc.).
    baseline_ = (baseline_ * static_cast<double>(baseline_samples_) +
                 last_score_) /
                static_cast<double>(baseline_samples_ + 1);
    ++baseline_samples_;
    return false;
  }

  const double threshold =
      baseline_ * options_.threshold_factor + options_.threshold_floor;
  if (last_score_ > threshold) {
    ++consecutive_hits_;
  } else {
    consecutive_hits_ = 0;
  }
  return consecutive_hits_ >= options_.debounce_frames;
}

}  // namespace surfos::sense
