// Array steering vectors for a surface aperture.
//
// The sensing services treat a metasurface as a receive array: an incoming
// plane wave from azimuth theta (measured in the panel's horizontal u-n
// plane, 0 = boresight/normal) excites element i with phase
// k * (r_i - center) . s(theta). Angle grids and steering vectors here feed
// the beamscan/MUSIC estimators in aoa.hpp.
#pragma once

#include <vector>

#include "em/cx.hpp"
#include "geom/vec3.hpp"
#include "surface/panel.hpp"

namespace surfos::sense {

/// Uniform azimuth grid in radians over [lo, hi], `bins` points inclusive.
std::vector<double> angle_grid(double lo_rad, double hi_rad, std::size_t bins);

/// Unit world direction at azimuth theta in the panel's u-n plane.
geom::Vec3 azimuth_direction(const surface::SurfacePanel& panel, double theta);

/// True azimuth of a world point as seen from the panel center, in the u-n
/// plane (elevation is projected out).
double true_azimuth(const surface::SurfacePanel& panel, const geom::Vec3& point);

/// Steering vector a(theta): a_i = exp(+j k (r_i - center) . s(theta)).
em::CVec steering_vector(const surface::SurfacePanel& panel, double theta,
                         double frequency_hz);

/// All steering vectors of a grid, as a (bins x elements) matrix.
em::CMat steering_matrix(const surface::SurfacePanel& panel,
                         const std::vector<double>& angles,
                         double frequency_hz);

}  // namespace surfos::sense
