#include "sense/steering.hpp"

#include <cmath>
#include <stdexcept>

#include "em/propagation.hpp"

namespace surfos::sense {

std::vector<double> angle_grid(double lo_rad, double hi_rad, std::size_t bins) {
  if (bins < 2 || hi_rad <= lo_rad) {
    throw std::invalid_argument("angle_grid: bad arguments");
  }
  std::vector<double> out(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    out[i] = lo_rad + (hi_rad - lo_rad) * static_cast<double>(i) /
                          static_cast<double>(bins - 1);
  }
  return out;
}

geom::Vec3 azimuth_direction(const surface::SurfacePanel& panel, double theta) {
  const geom::Frame& f = panel.frame();
  return f.normal() * std::cos(theta) + f.u() * std::sin(theta);
}

double true_azimuth(const surface::SurfacePanel& panel,
                    const geom::Vec3& point) {
  const geom::Vec3 local = panel.frame().to_local(point);
  // local = (u, v, n); azimuth in the u-n plane.
  return std::atan2(local.x, local.z);
}

em::CVec steering_vector(const surface::SurfacePanel& panel, double theta,
                         double frequency_hz) {
  const double k = em::wavenumber(frequency_hz);
  const geom::Vec3 s = azimuth_direction(panel, theta);
  const geom::Vec3 center = panel.center();
  const auto& positions = panel.element_positions();
  em::CVec a(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    a[i] = em::expj(k * (positions[i] - center).dot(s));
  }
  return a;
}

em::CMat steering_matrix(const surface::SurfacePanel& panel,
                         const std::vector<double>& angles,
                         double frequency_hz) {
  em::CMat mat(angles.size(), panel.element_count());
  for (std::size_t b = 0; b < angles.size(); ++b) {
    const em::CVec a = steering_vector(panel, angles[b], frequency_hz);
    for (std::size_t i = 0; i < a.size(); ++i) mat(b, i) = a[i];
  }
  return mat;
}

}  // namespace surfos::sense
