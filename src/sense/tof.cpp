#include "sense/tof.hpp"

#include <cmath>
#include <stdexcept>

#include "em/band.hpp"
#include "sense/localize.hpp"
#include "util/units.hpp"

namespace surfos::sense {

TofEstimate estimate_distance(std::span<const double> frequencies_hz,
                              const em::CVec& taps) {
  const std::size_t n = frequencies_hz.size();
  if (n < 2 || taps.size() != n) {
    throw std::invalid_argument("estimate_distance: need >= 2 matching taps");
  }
  // Unwrap phases across frequency.
  std::vector<double> phases(n);
  phases[0] = std::arg(taps[0]);
  for (std::size_t k = 1; k < n; ++k) {
    const double raw = std::arg(taps[k]);
    const double prev = phases[k - 1];
    double delta = raw - std::fmod(prev, util::kTwoPi);
    delta = util::wrap_pi(delta);
    phases[k] = prev + delta;
  }
  // Least-squares line fit phi = a + b * f.
  double mean_f = 0.0, mean_p = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    mean_f += frequencies_hz[k];
    mean_p += phases[k];
  }
  mean_f /= static_cast<double>(n);
  mean_p /= static_cast<double>(n);
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double df = frequencies_hz[k] - mean_f;
    num += df * (phases[k] - mean_p);
    den += df * df;
  }
  if (den < 1e-12) {
    throw std::invalid_argument("estimate_distance: degenerate frequency grid");
  }
  const double slope = num / den;  // dphi/df
  TofEstimate estimate;
  estimate.distance_m = -slope * em::kSpeedOfLight / util::kTwoPi;
  double ss = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double fit = mean_p + slope * (frequencies_hz[k] - mean_f);
    ss += (phases[k] - fit) * (phases[k] - fit);
  }
  estimate.residual_rad = std::sqrt(ss / static_cast<double>(n));
  return estimate;
}

std::vector<double> subcarrier_grid(double center_hz, double bandwidth_hz,
                                    std::size_t count) {
  if (count < 2 || bandwidth_hz <= 0.0 || center_hz <= bandwidth_hz / 2.0) {
    throw std::invalid_argument("subcarrier_grid: bad arguments");
  }
  std::vector<double> out(count);
  for (std::size_t k = 0; k < count; ++k) {
    out[k] = center_hz - bandwidth_hz / 2.0 +
             bandwidth_hz * static_cast<double>(k) /
                 static_cast<double>(count - 1);
  }
  return out;
}

RangeBearing range_and_bearing(const surface::SurfacePanel& panel,
                               std::span<const double> frequencies_hz,
                               std::span<const em::CVec> taps_per_frequency,
                               std::size_t spectrum_bins) {
  if (frequencies_hz.size() != taps_per_frequency.size() ||
      frequencies_hz.size() < 2) {
    throw std::invalid_argument("range_and_bearing: tap/frequency mismatch");
  }
  for (const em::CVec& taps : taps_per_frequency) {
    if (taps.size() != panel.element_count()) {
      throw std::invalid_argument("range_and_bearing: tap size mismatch");
    }
  }
  RangeBearing out;
  // Bearing from the middle subcarrier's spatial snapshot.
  const std::size_t mid = frequencies_hz.size() / 2;
  const AoaSensingModel model(&panel, frequencies_hz[mid], spectrum_bins);
  out.azimuth_rad = model.estimate_azimuth(taps_per_frequency[mid]);
  // Range from the center element's taps across frequency.
  const std::size_t center_index =
      (panel.rows() / 2) * panel.cols() + panel.cols() / 2;
  em::CVec center_taps(frequencies_hz.size());
  for (std::size_t k = 0; k < frequencies_hz.size(); ++k) {
    center_taps[k] = taps_per_frequency[k][center_index];
  }
  const TofEstimate tof = estimate_distance(frequencies_hz, center_taps);
  out.range_m = tof.distance_m;
  out.tof_residual_rad = tof.residual_rad;
  return out;
}

geom::Vec3 position_from_range_bearing(const surface::SurfacePanel& panel,
                                       const RangeBearing& estimate,
                                       double height_m) {
  return position_from_azimuth(panel, estimate.azimuth_rad, estimate.range_m,
                               height_m);
}

}  // namespace surfos::sense
