// Angle-of-arrival estimation and the differentiable localization loss.
//
// Model (paper Section 4): the client's uplink excites the surface aperture
// with the per-element vector g (element channels); the surface's current
// coefficients c distort that excitation to v = c .* g before it is observed
// through the AP's sounding procedure. AoA is estimated from v by beamscan
// (or MUSIC over multi-frequency snapshots). A configuration optimized only
// for coverage co-phases v toward the beam target and destroys the client's
// angle signature — the Figure 2 conflict. The localization task's loss is
// the cross-entropy between the normalized beamscan spectrum and the true
// AoA distribution, exactly as the paper defines it.
#pragma once

#include <span>
#include <vector>

#include "em/cx.hpp"
#include "surface/panel.hpp"

namespace surfos::sense {

/// Beamscan power spectrum: P_b = |a_b^H v|^2 for each steering row.
std::vector<double> beamscan_spectrum(const em::CMat& steering,
                                      const em::CVec& v);

/// MUSIC pseudo-spectrum from snapshot rows (snapshots x elements), with
/// `n_sources` signal-subspace dimensions.
std::vector<double> music_spectrum(const em::CMat& steering,
                                   const em::CMat& snapshots,
                                   std::size_t n_sources);

/// Quadratic-interpolated peak of a sampled spectrum; returns the refined
/// angle.
double spectrum_peak(const std::vector<double>& angles,
                     const std::vector<double>& spectrum);

/// Normalizes a non-negative spectrum into a probability distribution.
std::vector<double> normalize_spectrum(std::vector<double> spectrum);

/// Cross-entropy H(q, p) = -sum q_b log p_b (natural log, p floored).
double cross_entropy(const std::vector<double>& target,
                     const std::vector<double>& estimated);

/// One panel's AoA sensing pipeline: fixed angle grid + steering matrix.
class AoaSensingModel {
 public:
  AoaSensingModel(const surface::SurfacePanel* panel, double frequency_hz,
                  std::size_t bins = 121, double half_span_rad = 1.2);

  const std::vector<double>& angles() const noexcept { return angles_; }
  const surface::SurfacePanel& panel() const noexcept { return *panel_; }

  /// Beamscan spectrum of an aperture excitation v.
  std::vector<double> spectrum(const em::CVec& v) const;

  /// Estimated azimuth from excitation v (beamscan peak).
  double estimate_azimuth(const em::CVec& v) const;

  /// Discretized Gaussian target distribution centered on the true azimuth.
  std::vector<double> target_distribution(double true_azimuth_rad,
                                          double sigma_rad = 0.035) const;

  /// Cross-entropy localization loss for coefficients c against target, with
  /// v = c .* g. Optional analytic gradient w.r.t. the element phases of c.
  double loss(const em::CVec& c, const em::CVec& g,
              const std::vector<double>& target,
              std::span<double> grad_phases = {}) const;

 private:
  const surface::SurfacePanel* panel_;
  std::vector<double> angles_;
  em::CMat steering_;  ///< bins x elements.
};

}  // namespace surfos::sense
