#include "sense/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace surfos::sense {

EigenResult hermitian_eigen(const em::CMat& matrix, double tolerance,
                            std::size_t max_sweeps) {
  const std::size_t n = matrix.rows();
  if (n != matrix.cols()) {
    throw std::invalid_argument("hermitian_eigen: non-square matrix");
  }
  // Working copy, Hermitian-symmetrized from the upper triangle.
  em::CMat a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    a(r, r) = {matrix(r, r).real(), 0.0};
    for (std::size_t c = r + 1; c < n; ++c) {
      a(r, c) = matrix(r, c);
      a(c, r) = std::conj(matrix(r, c));
    }
  }
  em::CMat v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = {1.0, 0.0};

  auto off_norm = [&]() {
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = r + 1; c < n; ++c) sum += std::norm(a(r, c));
    }
    return sum;
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() < tolerance * tolerance * static_cast<double>(n * n)) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const em::Cx apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        // Complex Jacobi rotation zeroing a(p, q):
        //   phase factor e^{j*phi} = apq / |apq|, then a real 2x2 rotation.
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        const double abs_apq = std::abs(apq);
        const em::Cx phase = apq / abs_apq;
        const double tau = (aqq - app) / (2.0 * abs_apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        const em::Cx sp = s * phase;  // complex s incorporating the phase

        for (std::size_t k = 0; k < n; ++k) {
          const em::Cx akp = a(k, p);
          const em::Cx akq = a(k, q);
          a(k, p) = c * akp - std::conj(sp) * akq;
          a(k, q) = sp * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const em::Cx apk = a(p, k);
          const em::Cx aqk = a(q, k);
          a(p, k) = c * apk - sp * aqk;
          a(q, k) = std::conj(sp) * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const em::Cx vkp = v(k, p);
          const em::Cx vkq = v(k, q);
          v(k, p) = c * vkp - std::conj(sp) * vkq;
          v(k, q) = sp * vkp + c * vkq;
        }
      }
    }
  }

  EigenResult result;
  result.values.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i).real();
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] < diag[y]; });
  result.vectors = em::CMat(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    result.values[c] = diag[order[c]];
    for (std::size_t r = 0; r < n; ++r) result.vectors(r, c) = v(r, order[c]);
  }
  return result;
}

}  // namespace surfos::sense
