#include "sense/localize.hpp"

#include <cmath>

#include "sense/steering.hpp"

namespace surfos::sense {

geom::Vec3 position_from_azimuth(const surface::SurfacePanel& panel,
                                 double azimuth_rad, double range_m,
                                 double height_m) {
  // Direction in the panel's horizontal plane, then re-projected to the
  // client height at the given range.
  const geom::Vec3 dir = azimuth_direction(panel, azimuth_rad);
  geom::Vec3 p = panel.center() + dir * range_m;
  p.z = height_m;
  return p;
}

double localization_error(const surface::SurfacePanel& panel,
                          const geom::Vec3& true_position,
                          double estimated_azimuth_rad) {
  const double range = true_position.distance_to(panel.center());
  const geom::Vec3 estimate = position_from_azimuth(
      panel, estimated_azimuth_rad, range, true_position.z);
  return estimate.distance_to(true_position);
}

}  // namespace surfos::sense
