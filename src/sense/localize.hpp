// AoA -> position conversion, "assuming accurate ToF" (paper Section 4): the
// range to the client is taken as ground truth and only the angle estimate
// carries error, so localization error is the chord between the true position
// and the point at the true range along the estimated azimuth.
#pragma once

#include "geom/vec3.hpp"
#include "surface/panel.hpp"

namespace surfos::sense {

/// Position implied by an azimuth estimate at the true range (accurate ToF).
geom::Vec3 position_from_azimuth(const surface::SurfacePanel& panel,
                                 double azimuth_rad, double range_m,
                                 double height_m);

/// Localization error [m] for a client at `true_position` when the azimuth
/// estimate is `estimated_azimuth_rad`.
double localization_error(const surface::SurfacePanel& panel,
                          const geom::Vec3& true_position,
                          double estimated_azimuth_rad);

}  // namespace surfos::sense
