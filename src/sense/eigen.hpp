// Hermitian eigendecomposition (cyclic complex Jacobi), sized for sensing
// covariance matrices (hundreds of elements). Self-contained: the repository
// carries no external linear-algebra dependency.
#pragma once

#include "em/cx.hpp"

namespace surfos::sense {

struct EigenResult {
  std::vector<double> values;  ///< Ascending.
  em::CMat vectors;            ///< Column c is the eigenvector of values[c].
};

/// Decomposes a Hermitian matrix (only the upper triangle is trusted).
/// Throws std::invalid_argument for non-square input.
EigenResult hermitian_eigen(const em::CMat& matrix, double tolerance = 1e-12,
                            std::size_t max_sweeps = 64);

}  // namespace surfos::sense
