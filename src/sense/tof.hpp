// Wideband time-of-flight ranging and full (range + bearing) localization.
//
// The paper's exploratory study assumes accurate ToF and only estimates the
// angle. This module closes that gap: the propagation distance of a
// dominant path is recovered from the channel's phase slope across
// frequency, h(f) ~ a * exp(-j 2*pi*f*d/c)  =>  d = -(c / 2*pi) * dphi/df,
// using unwrapped phases and a least-squares line fit. Combining the range
// with the beamscan bearing yields a position estimate with no oracle
// inputs — md-Track's multi-dimensional estimation in miniature.
#pragma once

#include <span>
#include <vector>

#include "em/cx.hpp"
#include "geom/vec3.hpp"
#include "sense/aoa.hpp"
#include "surface/panel.hpp"

namespace surfos::sense {

struct TofEstimate {
  double distance_m = 0.0;
  /// RMS phase-fit residual [rad]; large values flag multipath-corrupted
  /// taps whose range estimate should not be trusted.
  double residual_rad = 0.0;
};

/// Distance of the dominant path from per-frequency channel taps. Requires
/// at least two frequencies; subcarrier spacing must satisfy the
/// unambiguous-range condition d < c / (2 * delta_f) — with 10 MHz spacing
/// that is 15 m, plenty for rooms.
TofEstimate estimate_distance(std::span<const double> frequencies_hz,
                              const em::CVec& taps);

/// Uniform subcarrier grid across a bandwidth, centered on `center_hz`.
std::vector<double> subcarrier_grid(double center_hz, double bandwidth_hz,
                                    std::size_t count);

struct RangeBearing {
  double azimuth_rad = 0.0;
  double range_m = 0.0;
  double tof_residual_rad = 0.0;
};

/// Full estimate from per-subcarrier element-domain snapshots of a sensing
/// panel (`taps_per_frequency[k]` is the panel's element vector at
/// `frequencies_hz[k]`): bearing via beamscan at the middle subcarrier,
/// range via the phase slope of the panel's center element.
RangeBearing range_and_bearing(const surface::SurfacePanel& panel,
                               std::span<const double> frequencies_hz,
                               std::span<const em::CVec> taps_per_frequency,
                               std::size_t spectrum_bins = 121);

/// Position implied by a RangeBearing at a client height (range is measured
/// from the panel center along the azimuth direction).
geom::Vec3 position_from_range_bearing(const surface::SurfacePanel& panel,
                                       const RangeBearing& estimate,
                                       double height_m);

}  // namespace surfos::sense
