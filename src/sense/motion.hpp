// Channel-variation motion detection — the second sensing mode the service
// API exposes (SensingGoal::kMotion). A moving body perturbs the multipath
// channel; the detector scores the decorrelation between consecutive channel
// snapshots against a calibrated quiescent baseline.
#pragma once

#include <deque>

#include "em/cx.hpp"

namespace surfos::sense {

struct MotionDetectorOptions {
  /// Snapshots used to establish the quiescent decorrelation baseline.
  std::size_t calibration_frames = 5;
  /// Motion is declared when the decorrelation score exceeds the baseline
  /// by this factor plus the absolute floor below.
  double threshold_factor = 5.0;
  double threshold_floor = 1e-4;
  /// Consecutive triggering frames required (debounce).
  std::size_t debounce_frames = 1;
};

class MotionDetector {
 public:
  explicit MotionDetector(MotionDetectorOptions options = {});

  /// Feeds one channel snapshot (e.g. the element-domain vector of a sensing
  /// surface, or multi-subcarrier taps). Returns true when motion is
  /// currently declared. The first snapshots calibrate and never trigger.
  bool update(const em::CVec& snapshot);

  /// Last decorrelation score in [0, 1]: 1 - |<prev, cur>| / (|prev||cur|).
  double last_score() const noexcept { return last_score_; }

  bool calibrated() const noexcept {
    return baseline_samples_ >= options_.calibration_frames;
  }
  double baseline() const noexcept { return baseline_; }

  void reset();

 private:
  MotionDetectorOptions options_;
  em::CVec previous_;
  double last_score_ = 0.0;
  double baseline_ = 0.0;
  std::size_t baseline_samples_ = 0;
  std::size_t consecutive_hits_ = 0;
};

/// Decorrelation between two snapshots: 0 for identical (up to a global
/// complex scale), approaching 1 for orthogonal.
double channel_decorrelation(const em::CVec& a, const em::CVec& b);

}  // namespace surfos::sense
