// Umbrella header + instrumentation macros for the telemetry subsystem.
//
// Call sites use the macros, never the registry directly: each expansion
// caches its instrument in a function-local static (registration runs once,
// under the registry mutex) and guards everything behind the process-wide
// `enabled()` switch, so SURFOS_TELEMETRY=off costs one predicted branch per
// site and nothing else.
//
//   SURFOS_COUNT("orch.tasks.admitted");          // +1
//   SURFOS_COUNT_N("sim.rays.paths", paths);      // +n
//   SURFOS_COUNT_SCHED("util.pool.chunks", n);    // scheduling-dependent:
//                                                 // excluded from determinism
//   SURFOS_GAUGE_SET("core.fleet.sites", 3.0);
//   SURFOS_SPAN("orch.step.optimize");            // RAII scope timer
//   SURFOS_TRACE_SPAN("orch.step.optimize");      // id-carrying scope timer:
//                                                 // Span histogram + flight-
//                                                 // recorder event w/ ambient
//                                                 // trace/parent ids
//   SURFOS_TRACE_INSTANT("hal.arq.send");         // point causal marker
#pragma once

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace.hpp"

#define SURFOS_TELEMETRY_CONCAT_IMPL(a, b) a##b
#define SURFOS_TELEMETRY_CONCAT(a, b) SURFOS_TELEMETRY_CONCAT_IMPL(a, b)

#define SURFOS_TELEMETRY_COUNT_IMPL(name, delta, deterministic)              \
  do {                                                                       \
    if (::surfos::telemetry::enabled()) {                                    \
      static ::surfos::telemetry::Counter& surfos_telemetry_counter =        \
          ::surfos::telemetry::MetricsRegistry::instance().counter(          \
              (name), (deterministic));                                      \
      surfos_telemetry_counter.add(                                          \
          static_cast<std::uint64_t>(delta));                                \
    }                                                                        \
  } while (0)

/// Deterministic event count: +1 per logical event, identical under any
/// SURFOS_THREADS value.
#define SURFOS_COUNT(name) SURFOS_TELEMETRY_COUNT_IMPL(name, 1, true)
#define SURFOS_COUNT_N(name, delta) \
  SURFOS_TELEMETRY_COUNT_IMPL(name, delta, true)

/// Scheduling-dependent count (thread-pool chunk geometry, inline
/// fallbacks): real telemetry, but excluded from determinism fingerprints.
#define SURFOS_COUNT_SCHED(name, delta) \
  SURFOS_TELEMETRY_COUNT_IMPL(name, delta, false)

#define SURFOS_GAUGE_SET(name, value)                                        \
  do {                                                                       \
    if (::surfos::telemetry::enabled()) {                                    \
      static ::surfos::telemetry::Gauge& surfos_telemetry_gauge =            \
          ::surfos::telemetry::MetricsRegistry::instance().gauge(name);      \
      surfos_telemetry_gauge.set(static_cast<double>(value));                \
    }                                                                        \
  } while (0)

/// RAII scope timer recording into the same-named latency histogram.
#define SURFOS_SPAN(name)                       \
  ::surfos::telemetry::Span SURFOS_TELEMETRY_CONCAT(surfos_telemetry_span_, \
                                                    __LINE__)(name)

/// Id-carrying scope timer: the SURFOS_SPAN histogram timing (same name, so
/// upgrading a site never changes histogram counts) plus — while SURFOS_TRACE
/// is on — a flight-recorder span event parented to the ambient TraceContext.
#define SURFOS_TRACE_SPAN(name)                                              \
  ::surfos::telemetry::TraceSpan SURFOS_TELEMETRY_CONCAT(                    \
      surfos_telemetry_trace_span_, __LINE__)(name)

/// Point-in-time causal marker under the ambient TraceContext (one predicted
/// branch while tracing is off).
#define SURFOS_TRACE_INSTANT(name) ::surfos::telemetry::record_instant(name)
