#include "telemetry/span.hpp"

namespace surfos::telemetry {

namespace {
thread_local Span* t_current_span = nullptr;
}

Span::Span(const char* name) noexcept : name_(name) {
  if (!enabled()) return;
  // Registration is cold after the first span of a given name; the registry
  // hands back a stable reference.
  histogram_ = &MetricsRegistry::instance().histogram(name_);
  parent_ = t_current_span;
  t_current_span = this;
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  histogram_->record(elapsed_us());
  t_current_span = parent_;
}

double Span::elapsed_us() const noexcept {
  if (!active_) return 0.0;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  return static_cast<double>(ns) / 1e3;
}

const Span* Span::current() noexcept { return t_current_span; }

std::size_t Span::depth() noexcept {
  std::size_t depth = 0;
  for (const Span* s = t_current_span; s != nullptr; s = s->parent()) ++depth;
  return depth;
}

}  // namespace surfos::telemetry
