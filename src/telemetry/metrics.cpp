#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace surfos::telemetry {

namespace {

bool enabled_from_env() noexcept {
  const char* env = std::getenv("SURFOS_TELEMETRY");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0;
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{enabled_from_env()};
  return flag;
}

/// fetch_add for atomic<double> via CAS (portable across libstdc++ versions).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow when == size
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& default_latency_buckets_us() {
  static const std::vector<double> buckets = {
      1.0,    2.0,    5.0,    10.0,   20.0,   50.0,   100.0,  200.0,
      500.0,  1e3,    2e3,    5e3,    1e4,    2e4,    5e4,    1e5,
      2e5,    5e5,    1e6,    2e6,    5e6,    1e7};
  return buckets;
}

// --- Registry ----------------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name, bool deterministic) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(deterministic))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back({name, counter->value(), counter->deterministic()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back({name, gauge->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.push_back({name, histogram->count(), histogram->sum(),
                              histogram->upper_bounds(),
                              histogram->bucket_counts()});
  }
  return out;
}

std::string MetricsRegistry::counters_fingerprint() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream oss;
  for (const auto& [name, counter] : counters_) {
    if (!counter->deterministic()) continue;
    oss << name << '=' << counter->value() << '\n';
  }
  return oss.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace surfos::telemetry
