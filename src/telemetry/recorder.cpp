#include "telemetry/recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <set>
#include <sstream>

#include "telemetry/export.hpp"
#include "core/config.hpp"

namespace surfos::telemetry {

namespace {

std::size_t capacity_from_env() noexcept {
  // The ring needs at least one slot; invalid values keep the default.
  return core::knob("SURFOS_TRACE_BUFFER", 65536, 1);
}

// --- Async-signal-safe formatting helpers ------------------------------------
// The crash path may run inside a signal handler, where snprintf/malloc are
// off-limits; everything below bottoms out in byte stores and write(2).

void write_all(int fd, const char* data, std::size_t len) noexcept {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;  // best effort: a crash dump never retries forever
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void write_str(int fd, const char* s) noexcept {
  std::size_t len = 0;
  while (s[len] != '\0') ++len;
  write_all(fd, s, len);
}

void write_u64(int fd, std::uint64_t value) noexcept {
  char buf[20];
  std::size_t i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  write_all(fd, buf + i, sizeof(buf) - i);
}

/// Microseconds with 3 decimals (ns precision), e.g. 1234 ns -> "1.234".
void write_us(int fd, std::uint64_t ns) noexcept {
  write_u64(fd, ns / 1000);
  const std::uint64_t frac = ns % 1000;
  char buf[4] = {'.', static_cast<char>('0' + frac / 100),
                 static_cast<char>('0' + (frac / 10) % 10),
                 static_cast<char>('0' + frac % 10)};
  write_all(fd, buf, sizeof(buf));
}

void write_hex64(int fd, std::uint64_t value) noexcept {
  char buf[18] = {'0', 'x'};
  for (int i = 0; i < 16; ++i) {
    const unsigned nibble =
        static_cast<unsigned>(value >> (60 - 4 * i)) & 0xFu;
    buf[2 + i] = static_cast<char>(nibble < 10 ? '0' + nibble
                                               : 'a' + (nibble - 10));
  }
  write_all(fd, buf, sizeof(buf));
}

/// Span/instant names are static literals under our control (identifier-ish),
/// but a torn crash-time read must never emit a broken JSON string: drop
/// anything that would need escaping.
void write_json_name(int fd, const char* name) noexcept {
  write_all(fd, "\"", 1);
  for (const char* p = name; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c >= 0x20 && c != '"' && c != '\\') write_all(fd, p, 1);
  }
  write_all(fd, "\"", 1);
}

// --- Crash-hook state --------------------------------------------------------

constexpr std::size_t kCrashPathMax = 512;
char g_crash_path[kCrashPathMax] = {0};
std::atomic<bool> g_crash_dumped{false};
std::terminate_handler g_previous_terminate = nullptr;

void crash_dump() noexcept {
  // First crasher wins; a second fault (or a second thread crashing) must
  // not re-enter the dump.
  if (g_crash_dumped.exchange(true)) return;
  if (g_crash_path[0] == '\0') return;
  const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  Recorder::instance().dump_unlocked(fd);
  ::close(fd);
}

extern "C" void surfos_trace_signal_handler(int sig) {
  crash_dump();
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

[[noreturn]] void surfos_trace_terminate_handler() {
  crash_dump();
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

}  // namespace

// --- Recorder ----------------------------------------------------------------

Recorder& Recorder::instance() {
  static Recorder recorder(std::max<std::size_t>(64, capacity_from_env()));
  return recorder;
}

Recorder::Recorder(std::size_t capacity, std::size_t stripes)
    : stripes_(std::max<std::size_t>(1, stripes)) {
  stripe_slots_ = (std::max<std::size_t>(1, capacity) + stripes_.size() - 1) /
                  stripes_.size();
  capacity_ = stripe_slots_ * stripes_.size();
  for (Stripe& stripe : stripes_) {
    stripe.ring = std::make_unique<TraceEvent[]>(stripe_slots_);
  }
  now_ns();  // pin the epoch before any crash can need it
}

void Recorder::record(const TraceEvent& event) noexcept {
  Stripe& stripe = stripes_[event.thread_index % stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.ring[stripe.head % stripe_slots_] = event;
  ++stripe.head;
}

std::vector<TraceEvent> Recorder::events() const {
  std::vector<TraceEvent> out;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const std::uint64_t n =
        std::min<std::uint64_t>(stripe.head, stripe_slots_);
    for (std::uint64_t i = stripe.head - n; i < stripe.head; ++i) {
      out.push_back(stripe.ring[i % stripe_slots_]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                        : a.span_id < b.span_id;
            });
  return out;
}

void Recorder::clear() noexcept {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.head = 0;
  }
}

std::uint64_t Recorder::recorded() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.head;
  }
  return total;
}

std::uint64_t Recorder::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    if (stripe.head > stripe_slots_) total += stripe.head - stripe_slots_;
  }
  return total;
}

std::vector<TraceEvent> events_after(const std::vector<TraceEvent>& sorted,
                                     std::uint64_t cursor_ts_ns,
                                     SpanId cursor_span_id,
                                     std::size_t limit) {
  // Binary search for the first event strictly after (ts, span) in the
  // same (ts_ns, span_id) order events() sorts by.
  const auto begin = std::upper_bound(
      sorted.begin(), sorted.end(),
      std::pair<std::uint64_t, SpanId>(cursor_ts_ns, cursor_span_id),
      [](const std::pair<std::uint64_t, SpanId>& cursor,
         const TraceEvent& e) {
        return cursor.first != e.ts_ns ? cursor.first < e.ts_ns
                                       : cursor.second < e.span_id;
      });
  const std::size_t available =
      static_cast<std::size_t>(sorted.end() - begin);
  return {begin, begin + static_cast<std::ptrdiff_t>(
                             std::min(limit, available))};
}

bool Recorder::dump(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json(events());
  return static_cast<bool>(out);
}

void Recorder::dump_unlocked(int fd) const noexcept {
  write_str(fd, "{\"traceEvents\":[");
  bool first = true;
  for (const Stripe& stripe : stripes_) {
    // Deliberately lock-free: the faulting thread may hold a stripe mutex.
    const std::uint64_t head = stripe.head;
    const std::uint64_t n = std::min<std::uint64_t>(head, stripe_slots_);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const TraceEvent& e = stripe.ring[i % stripe_slots_];
      if (e.name == nullptr) continue;  // torn slot
      if (!first) write_str(fd, ",");
      first = false;
      write_str(fd, "\n{\"name\":");
      write_json_name(fd, e.name);
      write_str(fd, ",\"cat\":\"surfos\",\"ph\":");
      write_str(fd, e.kind == TraceEvent::Kind::kInstant ? "\"i\",\"s\":\"t\""
                                                         : "\"X\"");
      write_str(fd, ",\"pid\":1,\"tid\":");
      write_u64(fd, e.thread_index);
      write_str(fd, ",\"ts\":");
      write_us(fd, e.ts_ns);
      if (e.kind != TraceEvent::Kind::kInstant) {
        write_str(fd, ",\"dur\":");
        write_us(fd, e.dur_ns);
      }
      write_str(fd, ",\"args\":{\"trace\":\"");
      write_hex64(fd, e.trace_id);
      write_str(fd, "\",\"span\":\"");
      write_hex64(fd, e.span_id);
      write_str(fd, "\",\"parent\":\"");
      write_hex64(fd, e.parent_span_id);
      write_str(fd, "\"");
      if (e.arg != 0) {
        write_str(fd, ",\"arg\":");
        write_u64(fd, e.arg);
      }
      write_str(fd, "}}");
    }
  }
  write_str(fd, "\n],\"displayTimeUnit\":\"ms\"}\n");
}

void Recorder::install_crash_handlers(std::string path) {
  instance();  // the handler must never be the first thing to construct it
  const std::size_t n = std::min(path.size(), kCrashPathMax - 1);
  std::copy_n(path.data(), n, g_crash_path);
  g_crash_path[n] = '\0';
  g_crash_dumped.store(false);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    std::signal(sig, surfos_trace_signal_handler);
  }
  static bool terminate_hooked = false;
  if (!terminate_hooked) {
    g_previous_terminate = std::set_terminate(surfos_trace_terminate_handler);
    terminate_hooked = true;
  }
}

std::uint64_t Recorder::now_ns() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::uint32_t Recorder::thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

// --- Exporters ---------------------------------------------------------------

namespace {

std::string hex_id(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[\n";
  oss << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"surfos\"}}";
  std::set<std::uint32_t> threads;
  for (const TraceEvent& e : events) threads.insert(e.thread_index);
  for (const std::uint32_t t : threads) {
    oss << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"thread-" << t
        << "\"}}";
  }
  char num[32];
  for (const TraceEvent& e : events) {
    oss << ",\n{\"name\":";
    append_json_string(oss, e.name == nullptr ? "?" : e.name);
    oss << ",\"cat\":\"surfos\",\"ph\":"
        << (e.kind == TraceEvent::Kind::kInstant ? "\"i\",\"s\":\"t\""
                                                 : "\"X\"")
        << ",\"pid\":1,\"tid\":" << e.thread_index;
    std::snprintf(num, sizeof(num), "%llu.%03llu",
                  static_cast<unsigned long long>(e.ts_ns / 1000),
                  static_cast<unsigned long long>(e.ts_ns % 1000));
    oss << ",\"ts\":" << num;
    if (e.kind != TraceEvent::Kind::kInstant) {
      std::snprintf(num, sizeof(num), "%llu.%03llu",
                    static_cast<unsigned long long>(e.dur_ns / 1000),
                    static_cast<unsigned long long>(e.dur_ns % 1000));
      oss << ",\"dur\":" << num;
    }
    oss << ",\"args\":{\"trace\":\"" << hex_id(e.trace_id) << "\",\"span\":\""
        << hex_id(e.span_id) << "\",\"parent\":\"" << hex_id(e.parent_span_id)
        << "\"";
    if (e.arg != 0) oss << ",\"arg\":" << e.arg;
    oss << "}}";
  }
  oss << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return oss.str();
}

std::string chrome_trace_json() {
  return chrome_trace_json(Recorder::instance().events());
}

std::string trace_table(const std::vector<TraceEvent>& events) {
  std::ostringstream oss;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %12s %12s %4s %-18s %-34s %s\n",
                "ts_us", "dur_us", "tid", "trace", "span<-parent", "name");
  oss << buf;
  for (const TraceEvent& e : events) {
    char link[40];
    std::snprintf(link, sizeof(link), "%08llx<-%08llx",
                  static_cast<unsigned long long>(e.span_id & 0xFFFFFFFFull),
                  static_cast<unsigned long long>(e.parent_span_id &
                                                  0xFFFFFFFFull));
    std::snprintf(buf, sizeof(buf), "  %12.3f %12.3f %4u %-18s %-34s %s%s\n",
                  static_cast<double>(e.ts_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.thread_index,
                  hex_id(e.trace_id).c_str(), link,
                  e.name == nullptr ? "?" : e.name,
                  e.kind == TraceEvent::Kind::kInstant ? " [i]" : "");
    oss << buf;
  }
  return oss.str();
}

std::string trace_table() {
  const Recorder& recorder = Recorder::instance();
  std::ostringstream oss;
  oss << "trace events (" << recorder.events().size() << " retained, "
      << recorder.dropped() << " overwritten, capacity "
      << recorder.capacity() << ")\n";
  oss << trace_table(recorder.events());
  return oss.str();
}

}  // namespace surfos::telemetry
