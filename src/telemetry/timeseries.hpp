// Epoch-indexed metric time-series for the streaming observability plane.
//
// The daemon records one Snapshot per control epoch into a fixed-capacity
// ring (telemetry::Timeseries) and serves subscribers *deltas*: only the
// counters and gauges whose values changed since the epoch the subscriber
// last acknowledged. A subscriber that falls behind the ring (its anchor
// epoch was evicted) gets a full baseline instead — deltas are an
// optimization, never a correctness dependency.
//
// Alongside the per-epoch samples the series maintains mergeable latency
// histograms (admit->applied, epoch duration, HAL flush time). Unlike
// telemetry::Histogram these are plain value types: two of them with the
// same bucket bounds can be merged bucket-wise, which is what lets
// per-shard or per-restart histograms aggregate into one fleet view.
//
// Thread-compatibility: Timeseries is NOT internally synchronized. The
// daemon mutates and reads it under its own epoch mutex; benches drive it
// single-threaded.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "telemetry/metrics.hpp"

namespace surfos::telemetry {

/// Fixed-bucket histogram as a plain value: same bucket semantics as
/// telemetry::Histogram (inclusive finite upper bounds + one overflow
/// bucket) but copyable and mergeable.
struct MergeableHistogram {
  MergeableHistogram() = default;
  explicit MergeableHistogram(std::vector<double> upper_bounds);

  void record(double value) noexcept;
  /// Bucket-wise sum. Bounds must match exactly; a mismatch is a caller
  /// bug and the merge is refused (returns false).
  bool merge(const MergeableHistogram& other) noexcept;
  /// Approximate quantile (q in [0,1]) from bucket edges: returns the
  /// upper bound of the bucket holding the q-th sample (the last finite
  /// bound for the overflow bucket), 0 when empty.
  double quantile(double q) const noexcept;
  double mean() const noexcept { return count ? sum / double(count) : 0.0; }
  void reset() noexcept;

  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, overflow last.
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Epoch-duration / admit-latency bucket edges in milliseconds (the wire
/// and the SLO watchdog think in ms; HAL flush keeps the us-scale
/// default_latency_buckets_us()).
const std::vector<double>& default_epoch_buckets_ms();

/// One per-epoch metrics snapshot (counters + gauges only; histograms are
/// aggregated separately and don't delta-encode usefully).
struct TimeseriesSample {
  std::uint64_t epoch = 0;
  double epoch_ms = 0.0;  ///< Wall-clock duration of this control epoch.
  double flush_us = 0.0;  ///< HAL actuation time within the epoch.
  std::vector<CounterSample> counters;  ///< Sorted by name.
  std::vector<GaugeSample> gauges;      ///< Sorted by name.
};

/// A delta between two epochs: only instruments whose value changed.
/// `baseline == true` means the anchor epoch was unavailable (first event,
/// or evicted by ring wraparound after the subscriber stalled) and the
/// counters/gauges are the complete current set.
struct MetricsDelta {
  std::uint64_t from_epoch = 0;  ///< 0 when baseline.
  std::uint64_t to_epoch = 0;
  bool baseline = false;
  double epoch_ms = 0.0;
  double flush_us = 0.0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
};

class Timeseries {
 public:
  explicit Timeseries(std::size_t capacity = 512);

  /// Appends the snapshot for `epoch` (epochs must be recorded in
  /// increasing order; re-recording the same epoch overwrites it).
  void record(std::uint64_t epoch, const Snapshot& snapshot, double epoch_ms,
              double flush_us);

  /// Admit->applied latency feed (called when a submitted task is first
  /// observed running).
  void record_admit_latency_ms(double ms) { admit_ms_.record(ms); }

  /// Delta of the latest sample against the sample at `since_epoch`.
  /// nullopt when nothing has been recorded yet. Falls back to a full
  /// baseline when `since_epoch` is 0 or no longer in the ring.
  std::optional<MetricsDelta> delta_since(std::uint64_t since_epoch) const;

  const TimeseriesSample* latest() const noexcept;
  /// Sample for an exact epoch, or nullptr if evicted / never recorded.
  const TimeseriesSample* find(std::uint64_t epoch) const noexcept;

  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return ring_.size(); }

  const MergeableHistogram& epoch_ms_hist() const noexcept {
    return epoch_ms_;
  }
  const MergeableHistogram& flush_us_hist() const noexcept {
    return flush_us_;
  }
  const MergeableHistogram& admit_ms_hist() const noexcept {
    return admit_ms_;
  }
  MergeableHistogram& epoch_ms_hist() noexcept { return epoch_ms_; }
  MergeableHistogram& flush_us_hist() noexcept { return flush_us_; }
  MergeableHistogram& admit_ms_hist() noexcept { return admit_ms_; }

 private:
  std::vector<TimeseriesSample> ring_;  ///< Fixed size = capacity.
  std::size_t next_ = 0;                ///< Next write slot.
  std::size_t count_ = 0;               ///< Filled slots (<= capacity).
  MergeableHistogram epoch_ms_;
  MergeableHistogram flush_us_;
  MergeableHistogram admit_ms_;
};

/// Two-pointer diff of sorted sample vectors: entries of `now` missing
/// from `then` or with a different value. Exposed for tests.
std::vector<CounterSample> diff_counters(
    const std::vector<CounterSample>& then,
    const std::vector<CounterSample>& now);
std::vector<GaugeSample> diff_gauges(const std::vector<GaugeSample>& then,
                                     const std::vector<GaugeSample>& now);

}  // namespace surfos::telemetry
