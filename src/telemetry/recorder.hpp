// Crash-safe flight recorder: a bounded, lock-striped ring buffer of recent
// trace events, plus exporters (Chrome trace-event JSON and a human table).
//
// The recorder keeps the *last* SURFOS_TRACE_BUFFER events (default 65536,
// ~56 B each) and overwrites the oldest when full — a flight recorder, not a
// log: always cheap to write, always holds the moments before an incident.
// Events are spread over a fixed set of stripes keyed by thread index, so
// concurrent writers almost never contend on the same mutex, and a stripe
// write is one lock + one 56-byte store.
//
// Crash safety: `install_crash_handlers(path)` hooks fatal signals (SIGSEGV,
// SIGABRT, SIGBUS, SIGFPE, SIGILL) and std::terminate to dump the ring as
// Chrome trace JSON before re-raising. The signal path uses only
// async-signal-safe primitives (open/write + hand-rolled integer formatting)
// and reads the stripes without locking — a torn event in a crash dump is an
// acceptable trade for never deadlocking inside a signal handler. Event name
// pointers are string literals (static storage), so they are safe to read
// from any context.
//
// Exported JSON loads directly in chrome://tracing and Perfetto: complete
// ("X") events carry microsecond ts/dur, instant ("i") events mark causal
// points, and metadata ("M") events name the process and per-thread tracks.
// Every event's args carry the trace id / span id / parent span id, so a
// single intent's causal chain can be followed across layers and threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace surfos::telemetry {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSpan,     ///< Complete span: ts_ns .. ts_ns + dur_ns.
    kInstant,  ///< Point event (dur_ns == 0).
  };

  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_span_id = 0;
  const char* name = nullptr;  ///< Static storage duration (literal).
  std::uint64_t ts_ns = 0;     ///< Nanoseconds since the recorder epoch.
  std::uint64_t dur_ns = 0;
  /// Optional numeric payload (0 = none): a site/shard index, queue depth —
  /// whatever the span site wants joined to the event in the export.
  std::uint64_t arg = 0;
  std::uint32_t thread_index = 0;
  Kind kind = Kind::kSpan;
};

class Recorder {
 public:
  /// The process-wide recorder; capacity from SURFOS_TRACE_BUFFER (events,
  /// default 65536, clamped to >= 64).
  static Recorder& instance();

  /// Direct construction for tests sizing their own ring.
  explicit Recorder(std::size_t capacity, std::size_t stripes = 8);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Appends one event (lock: this thread's stripe only). Never allocates.
  void record(const TraceEvent& event) noexcept;

  /// Point-in-time copy of the retained events, sorted by timestamp.
  std::vector<TraceEvent> events() const;

  /// Drops every retained event and zeroes the drop counter.
  void clear() noexcept;

  /// Total event slots (rounded up to a multiple of the stripe count).
  std::size_t capacity() const noexcept { return capacity_; }
  /// Events recorded since the last clear().
  std::uint64_t recorded() const noexcept;
  /// Events overwritten by ring wrap-around since the last clear().
  std::uint64_t dropped() const noexcept;

  /// Writes the Chrome trace JSON of the current ring to `path`.
  /// Returns false when the file cannot be opened.
  bool dump(const std::string& path) const;

  /// Raw dump for crash contexts: iterates stripes WITHOUT locking and
  /// formats with async-signal-safe primitives only. `fd` must be open for
  /// writing. Also the implementation behind the installed signal handlers.
  void dump_unlocked(int fd) const noexcept;

  /// Installs fatal-signal and std::terminate hooks that dump the ring to
  /// `path` ("<path>" is (re)created at crash time) and then re-raise.
  /// Process-wide; the last installed path wins. Call once near startup.
  static void install_crash_handlers(std::string path);

  /// Nanoseconds since the process-wide recorder epoch (first call).
  static std::uint64_t now_ns() noexcept;
  /// Small dense index of the calling thread (assigned on first use) —
  /// the `tid` of exported events.
  static std::uint32_t thread_index() noexcept;

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::unique_ptr<TraceEvent[]> ring;
    /// Events ever written to this stripe; ring slot = head % slots.
    std::uint64_t head = 0;
  };

  std::size_t capacity_ = 0;      // total, all stripes
  std::size_t stripe_slots_ = 0;  // per stripe
  std::vector<Stripe> stripes_;
};

// --- Pagination --------------------------------------------------------------

/// Cursor-paginated slice of a (ts_ns, span_id)-sorted event vector (the
/// order Recorder::events() returns): up to `limit` events strictly after
/// the cursor position. A zero cursor starts from the beginning. Events
/// evicted by ring wraparound between pages simply never appear — the
/// cursor ordering guarantees no duplicates and no torn events, and the
/// eviction shows up in Recorder::dropped().
std::vector<TraceEvent> events_after(const std::vector<TraceEvent>& sorted,
                                     std::uint64_t cursor_ts_ns,
                                     SpanId cursor_span_id,
                                     std::size_t limit);

// --- Exporters ---------------------------------------------------------------

/// Chrome trace-event JSON (chrome://tracing / Perfetto loadable) of the
/// given events: {"traceEvents":[...],"displayTimeUnit":"ms"} with process/
/// thread metadata and per-event trace/span/parent args.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);
std::string chrome_trace_json();  ///< Of the global recorder's ring.

/// Fixed-width human table ("surfos trace"): timestamp, duration, thread,
/// trace/span ids, and name, one row per event in timestamp order.
std::string trace_table(const std::vector<TraceEvent>& events);
std::string trace_table();  ///< Of the global recorder's ring.

}  // namespace surfos::telemetry
