#include "telemetry/trace.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "telemetry/recorder.hpp"

namespace surfos::telemetry {

namespace {

bool trace_enabled_from_env() noexcept {
  const char* env = std::getenv("SURFOS_TRACE");
  if (env == nullptr) return false;  // tracing is opt-in
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0;
}

std::atomic<bool>& trace_flag() noexcept {
  static std::atomic<bool> flag{trace_enabled_from_env()};
  return flag;
}

thread_local TraceContext t_ambient{};

std::atomic<std::uint64_t> g_next_span_id{1};

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

bool trace_enabled() noexcept {
  return trace_flag().load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) noexcept {
  trace_flag().store(on, std::memory_order_relaxed);
}

TraceId make_trace_id(std::uint64_t domain, std::uint64_t seq) noexcept {
  const TraceId id = mix64(domain ^ mix64(seq));
  return id == 0 ? 1 : id;
}

std::uint64_t trace_domain(const char* tag) noexcept {
  // FNV-1a over the tag bytes.
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char* p = tag; *p != '\0'; ++p) {
    hash ^= static_cast<unsigned char>(*p);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

const TraceContext& current_trace() noexcept { return t_ambient; }

SpanId next_span_id() noexcept {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

// --- TraceScope --------------------------------------------------------------

TraceScope::TraceScope(const TraceContext& context) noexcept
    : previous_(t_ambient) {
  t_ambient = context;
}

TraceScope::~TraceScope() { t_ambient = previous_; }

// --- TraceSpan ---------------------------------------------------------------

TraceSpan::TraceSpan(const char* name) noexcept : TraceSpan(name, 0) {}

TraceSpan::TraceSpan(const char* name, std::uint64_t arg) noexcept
    : span_(name), name_(name), arg_(arg) {
  if (!trace_enabled()) return;
  previous_ = t_ambient;
  context_.trace_id = previous_.trace_id;
  context_.span_id = next_span_id();
  t_ambient = context_;
  start_ns_ = Recorder::now_ns();
  recording_ = true;
}

TraceSpan::~TraceSpan() {
  if (!recording_) return;
  TraceEvent event;
  event.trace_id = context_.trace_id;
  event.span_id = context_.span_id;
  event.parent_span_id = previous_.span_id;
  event.name = name_;
  event.ts_ns = start_ns_;
  event.dur_ns = Recorder::now_ns() - start_ns_;
  event.arg = arg_;
  event.thread_index = Recorder::thread_index();
  event.kind = TraceEvent::Kind::kSpan;
  Recorder::instance().record(event);
  t_ambient = previous_;
}

void record_instant(const char* name) noexcept { record_instant(name, 0); }

void record_instant(const char* name, std::uint64_t arg) noexcept {
  if (!trace_enabled()) return;
  TraceEvent event;
  event.trace_id = t_ambient.trace_id;
  event.span_id = next_span_id();
  event.parent_span_id = t_ambient.span_id;
  event.name = name;
  event.ts_ns = Recorder::now_ns();
  event.dur_ns = 0;
  event.arg = arg;
  event.thread_index = Recorder::thread_index();
  event.kind = TraceEvent::Kind::kInstant;
  Recorder::instance().record(event);
}

}  // namespace surfos::telemetry
