// Causal trace contexts: which intent paid which cost.
//
// The metrics subsystem (metrics.hpp) reports *aggregates*; this module ties
// individual events back to the user intent that caused them. A TraceContext
// is minted when the service broker admits an intent (or, failing that, when
// the orchestrator admits a task) and carries two ids:
//
//   - trace_id: one per intent, shared by every span the intent causes as it
//     fans out through broker translation, orchestrator scheduling, optimizer
//     evaluation, HAL config writes, and sim channel precompute.
//   - span_id:  the enclosing traced span on this thread — the parent of any
//     span opened beneath it.
//
// Determinism contract: trace ids are derived from stable sequence numbers
// (TaskId, the broker's per-intent counter) via a splitmix64-style hash —
// never wall-clock time or randomness — so the same run produces the same
// ids regardless of thread count or whether tracing is switched on. Span ids
// are process-unique (a relaxed atomic counter) and only exist while tracing
// is enabled; their allocation order is a scheduling detail.
//
// The ambient context is a thread-local value installed with a TraceScope
// (RAII). Installing a scope is unconditional and costs a 16-byte TLS swap —
// ids must not depend on the SURFOS_TRACE switch — while *recording* trace
// events is gated on `trace_enabled()` (SURFOS_TRACE env, off by default):
// with tracing off a SURFOS_TRACE_SPAN site pays the same single predicted
// branch contract as the PR 3 metrics macros, plus its plain Span timing.
#pragma once

#include <cstdint>

#include "telemetry/span.hpp"

namespace surfos::telemetry {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

/// Process-wide tracing switch (SURFOS_TRACE env; *off* by default — the
/// opposite polarity of the metrics switch, because tracing buys a bounded
/// ring buffer and per-span recorder writes).
bool trace_enabled() noexcept;
/// Overrides the switch at runtime (tests / benches / examples).
void set_trace_enabled(bool on) noexcept;

// --- Context -----------------------------------------------------------------

struct TraceContext {
  TraceId trace_id = 0;  ///< 0 = not part of any traced intent.
  SpanId span_id = 0;    ///< Enclosing traced span (0 = trace root).

  constexpr bool valid() const noexcept { return trace_id != 0; }

  friend constexpr bool operator==(const TraceContext& a,
                                   const TraceContext& b) noexcept {
    return a.trace_id == b.trace_id && a.span_id == b.span_id;
  }
};

/// Deterministic trace id from a domain tag and a sequence number
/// (splitmix64 finalizer; never returns 0, so the result always `valid()`).
TraceId make_trace_id(std::uint64_t domain, std::uint64_t seq) noexcept;

/// FNV-1a hash of a domain tag string ("broker.intent", "orch.task") — the
/// `domain` argument of make_trace_id, separating id spaces per minting site.
std::uint64_t trace_domain(const char* tag) noexcept;

/// This thread's ambient context ({0, 0} outside any scope).
const TraceContext& current_trace() noexcept;

/// Next process-unique span id (>= 1). Only traced spans consume ids.
SpanId next_span_id() noexcept;

/// RAII: installs `context` as this thread's ambient trace context and
/// restores the previous one on destruction. Installation is unconditional
/// (see header comment): task trace ids must be identical whether or not
/// SURFOS_TRACE is on.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& context) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext previous_;
};

// --- Traced spans ------------------------------------------------------------

/// An id-carrying upgrade of Span: times the scope into the same-named
/// latency histogram exactly like Span (so histogram counts are unchanged by
/// the upgrade), and — while tracing is enabled — additionally records a
/// complete-span event into the flight recorder, parented to the ambient
/// context and installing itself as the ambient span for the duration.
///
/// `name` must have static storage duration (string literals), the same
/// contract as Span: both the span stack and the recorder store the pointer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  /// As above, plus a numeric payload (site index, queue depth) exported as
  /// the event's `arg`. 0 means "no payload".
  TraceSpan(const char* name, std::uint64_t arg) noexcept;
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Microseconds since construction (0 when telemetry is disabled) — the
  /// Span accessor, so StepTrace call sites keep working after the upgrade.
  double elapsed_us() const noexcept { return span_.elapsed_us(); }
  /// This span's context while recording ({0,0} when tracing is off).
  const TraceContext& context() const noexcept { return context_; }

 private:
  Span span_;  // histogram timing, gated on the SURFOS_TELEMETRY switch
  const char* name_;
  TraceContext context_{};   // this span (trace id + own span id)
  TraceContext previous_{};  // ambient to restore
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
  bool recording_ = false;
};

/// Records an instant event (zero duration) under the ambient context while
/// tracing is enabled; a single predicted branch otherwise. Used for
/// point-in-time causal markers (scheduler assignment, ARQ send/retransmit).
void record_instant(const char* name) noexcept;
/// As above with a numeric `arg` payload (0 = none).
void record_instant(const char* name, std::uint64_t arg) noexcept;

}  // namespace surfos::telemetry
