// RAII scoped timers ("spans") feeding latency histograms.
//
// A Span times a scope and, on destruction, records the elapsed wall-clock
// microseconds into the histogram of the same name in the process-wide
// MetricsRegistry. Spans nest: each thread keeps an implicit stack, so a
// span opened inside another knows its parent (depth()/current() expose the
// nesting for traces and debugging). The control cycle uses one span per
// phase — orch.step.{schedule,optimize,actuate,measure} — and the hot
// subsystems time their own work (sim.channel.precompute, hal.feedback.sweep,
// util.pool.run).
//
// When telemetry is disabled (SURFOS_TELEMETRY=off), constructing a Span is
// a single branch: no clock read, no registry lookup, nothing recorded, and
// elapsed_us() returns 0 — timings never leak into supposedly-identical
// disabled-mode reports.
#pragma once

#include <chrono>
#include <cstddef>

#include "telemetry/metrics.hpp"

namespace surfos::telemetry {

class Span {
 public:
  /// `name` must be a string with static storage duration (literals): spans
  /// are hot-path objects and never copy it.
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  const char* name() const noexcept { return name_; }
  bool active() const noexcept { return active_; }
  const Span* parent() const noexcept { return parent_; }

  /// Microseconds since construction (0 when telemetry is disabled).
  double elapsed_us() const noexcept;

  /// Innermost active span on this thread (nullptr outside any span).
  static const Span* current() noexcept;
  /// Nesting depth of the current thread's span stack.
  static std::size_t depth() noexcept;

 private:
  const char* name_;
  Span* parent_ = nullptr;
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
  bool active_ = false;
};

}  // namespace surfos::telemetry
