#include "telemetry/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace surfos::telemetry {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// JSON has no literal for NaN/Inf — "%.6g" would emit bare `nan`/`inf`
// tokens that break strict parsers, so non-finite values serialize as null.
std::string format_json_double(double value) {
  if (!std::isfinite(value)) return "null";
  return format_double(value);
}

}  // namespace

void append_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
        break;
    }
  }
  os << '"';
}

std::string snapshot_table(const Snapshot& snapshot) {
  std::size_t name_width = 4;
  for (const auto& c : snapshot.counters) {
    name_width = std::max(name_width, c.name.size());
  }
  for (const auto& g : snapshot.gauges) {
    name_width = std::max(name_width, g.name.size());
  }
  for (const auto& h : snapshot.histograms) {
    name_width = std::max(name_width, h.name.size());
  }

  std::ostringstream oss;
  const auto row = [&](const std::string& name, const std::string& kind,
                       const std::string& value) {
    oss << "  " << name;
    oss << std::string(name_width - name.size() + 2, ' ');
    oss << kind << std::string(10 - std::min<std::size_t>(9, kind.size()), ' ')
        << value << '\n';
  };
  oss << "telemetry snapshot ("
      << snapshot.counters.size() + snapshot.gauges.size() +
             snapshot.histograms.size()
      << " instruments)\n";
  for (const auto& c : snapshot.counters) {
    row(c.name, c.deterministic ? "counter" : "counter*",
        std::to_string(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    row(g.name, "gauge", format_double(g.value));
  }
  for (const auto& h : snapshot.histograms) {
    const std::uint64_t n = h.count;
    const double mean = n == 0 ? 0.0 : h.sum / static_cast<double>(n);
    row(h.name, "latency",
        "count " + std::to_string(n) + ", mean " + format_double(mean) +
            " us");
  }
  return oss.str();
}

std::string snapshot_table() {
  return snapshot_table(MetricsRegistry::instance().snapshot());
}

std::string snapshot_json(const Snapshot& snapshot) {
  std::ostringstream oss;
  oss << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    if (i > 0) oss << ',';
    append_json_string(oss, c.name);
    oss << ":{\"value\":" << c.value << ",\"deterministic\":"
        << (c.deterministic ? "true" : "false") << '}';
  }
  oss << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    if (i > 0) oss << ',';
    append_json_string(oss, g.name);
    oss << ':' << format_json_double(g.value);
  }
  oss << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) oss << ',';
    append_json_string(oss, h.name);
    oss << ":{\"count\":" << h.count << ",\"sum\":" << format_json_double(h.sum)
        << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) oss << ',';
      oss << '[';
      if (b < h.upper_bounds.size()) {
        oss << format_json_double(h.upper_bounds[b]);
      } else {
        oss << "null";
      }
      oss << ',' << h.buckets[b] << ']';
    }
    oss << "]}";
  }
  oss << "}}";
  return oss.str();
}

std::string snapshot_json() {
  return snapshot_json(MetricsRegistry::instance().snapshot());
}

}  // namespace surfos::telemetry
