// Snapshot exporters: human-readable table and machine-readable JSON.
//
// Both render a Snapshot (default: the process-wide registry's) with
// deterministic ordering — instruments appear sorted by name, so two
// identical runs produce byte-identical exports of the deterministic
// counter set regardless of thread count.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "telemetry/metrics.hpp"

namespace surfos::telemetry {

/// Appends `s` to `os` as a JSON string literal, escaping quotes,
/// backslashes, and every control character (U+0000..U+001F as \uXXXX or the
/// short forms \b \f \n \r \t) — arbitrary instrument/span names always emit
/// valid JSON. Shared by the snapshot and trace exporters.
void append_json_string(std::ostream& os, std::string_view s);

/// Fixed-width table of counters, gauges, and histogram summaries
/// (count / mean / max-bucket), for operator consoles and examples.
std::string snapshot_table(const Snapshot& snapshot);
std::string snapshot_table();  ///< Table of the global registry.

/// JSON object:
///   {"counters": {"name": {"value": N, "deterministic": true}, ...},
///    "gauges": {"name": V, ...},
///    "histograms": {"name": {"count": N, "sum": S,
///                            "buckets": [[bound, count], ...]}, ...}}
/// The final histogram bucket's bound is null (overflow).
std::string snapshot_json(const Snapshot& snapshot);
std::string snapshot_json();  ///< JSON of the global registry.

}  // namespace surfos::telemetry
