// Control-plane telemetry: process-wide metrics registry.
//
// SurfOS is meant to run as an operator service (paper Section 1: "a service
// from ISPs, a module of Cloud RAN, or a standalone system"), which is
// unusable at fleet scale without metrics. This module provides the one
// process-wide MetricsRegistry every OS layer reports into:
//
//   - Counter:   monotonically increasing event counts (lock-free atomics).
//   - Gauge:     last-written level (sites online, active tasks).
//   - Histogram: fixed-bucket distributions, used for span latencies.
//
// Naming scheme: `layer.component.metric` (e.g. "hal.arq.retransmissions",
// "orch.plan.reused", "util.pool.chunks"). Registration is mutex-guarded and
// cold; hot paths cache the returned reference (the SURFOS_COUNT macro in
// telemetry.hpp does this with a function-local static) and then only pay a
// relaxed atomic add.
//
// Determinism contract: every Counter is *deterministic* by default — its
// final value must be bit-identical for any SURFOS_THREADS value, which
// holds for event counts incremented exactly once per logical event.
// Counters whose value depends on runtime scheduling (thread-pool chunk
// geometry, nested-inline fallbacks) are registered with
// `deterministic = false` and excluded from `counters_fingerprint()`, the
// string the determinism tests compare. Histograms record wall-clock
// timings and are always excluded from determinism checks.
//
// The whole subsystem sits behind one process-wide switch: `enabled()`,
// initialized from the SURFOS_TELEMETRY environment variable ("off"/"0"/
// "false" disable it, anything else — including unset — enables it). When
// disabled, the instrumentation macros reduce to a single predicted branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace surfos::telemetry {

/// Process-wide telemetry switch (SURFOS_TELEMETRY env; on by default).
bool enabled() noexcept;
/// Overrides the switch at runtime (tests / benches measuring overhead).
void set_enabled(bool on) noexcept;

// --- Instruments -------------------------------------------------------------

class Counter {
 public:
  explicit Counter(bool deterministic = true) noexcept
      : deterministic_(deterministic) {}

  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// True when the count is required to be bit-identical under any
  /// SURFOS_THREADS value (the default; see header comment).
  bool deterministic() const noexcept { return deterministic_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
  bool deterministic_;
};

class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `upper_bounds` are the inclusive upper edges of
/// the finite buckets, strictly increasing; one implicit overflow bucket
/// catches everything above the last bound. Bucket counts, the total count,
/// and the running sum are all lock-free atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;
  double mean() const noexcept;
  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// Finite buckets followed by the overflow bucket (size = bounds + 1).
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets in microseconds: 1us .. 10s, roughly 1-2-5 per
/// decade — wide enough for both driver writes and full control cycles.
const std::vector<double>& default_latency_buckets_us();

// --- Snapshots ---------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
  bool deterministic = true;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last).
};

/// A point-in-time copy of every registered instrument, ordered by name
/// (deterministic: the registry stores instruments in sorted maps).
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

// --- Registry ----------------------------------------------------------------

class MetricsRegistry {
 public:
  /// The process-wide registry every layer reports into.
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates an instrument. References stay valid for the registry's
  /// lifetime (reset() zeroes values but never removes registrations). The
  /// `deterministic` flag only applies on first registration.
  Counter& counter(const std::string& name, bool deterministic = true);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(
      const std::string& name,
      const std::vector<double>& upper_bounds = default_latency_buckets_us());

  Snapshot snapshot() const;

  /// "name=value\n" lines for every *deterministic* counter, sorted by name —
  /// the string the SURFOS_THREADS determinism tests compare bit-for-bit.
  std::string counters_fingerprint() const;

  /// Zeroes every instrument, keeping registrations (cached references in
  /// instrumented call sites stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace surfos::telemetry
