#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace surfos::telemetry {

MergeableHistogram::MergeableHistogram(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), buckets(bounds.size() + 1, 0) {}

void MergeableHistogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  buckets[static_cast<std::size_t>(it - bounds.begin())] += 1;
  count += 1;
  sum += value;
}

bool MergeableHistogram::merge(const MergeableHistogram& other) noexcept {
  if (bounds != other.bounds) return false;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  return true;
}

double MergeableHistogram::quantile(double q) const noexcept {
  if (count == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based; walk the cumulative counts.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * double(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

void MergeableHistogram::reset() noexcept {
  std::fill(buckets.begin(), buckets.end(), 0);
  count = 0;
  sum = 0.0;
}

const std::vector<double>& default_epoch_buckets_ms() {
  static const std::vector<double> kBuckets = {
      0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
      200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0};
  return kBuckets;
}

Timeseries::Timeseries(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)),
      epoch_ms_(default_epoch_buckets_ms()),
      flush_us_(default_latency_buckets_us()),
      admit_ms_(default_epoch_buckets_ms()) {}

void Timeseries::record(std::uint64_t epoch, const Snapshot& snapshot,
                        double epoch_ms, double flush_us) {
  // Same epoch re-recorded (tests stepping by hand) overwrites in place so
  // the ring never holds two samples with one epoch.
  TimeseriesSample* slot = nullptr;
  if (count_ > 0) {
    const std::size_t last = (next_ + ring_.size() - 1) % ring_.size();
    if (ring_[last].epoch == epoch) slot = &ring_[last];
  }
  if (slot == nullptr) {
    slot = &ring_[next_];
    next_ = (next_ + 1) % ring_.size();
    count_ = std::min(count_ + 1, ring_.size());
    epoch_ms_.record(epoch_ms);
    flush_us_.record(flush_us);
  }
  slot->epoch = epoch;
  slot->epoch_ms = epoch_ms;
  slot->flush_us = flush_us;
  slot->counters = snapshot.counters;
  slot->gauges = snapshot.gauges;
}

const TimeseriesSample* Timeseries::latest() const noexcept {
  if (count_ == 0) return nullptr;
  return &ring_[(next_ + ring_.size() - 1) % ring_.size()];
}

const TimeseriesSample* Timeseries::find(
    std::uint64_t epoch) const noexcept {
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t at = (next_ + ring_.size() - 1 - i) % ring_.size();
    if (ring_[at].epoch == epoch) return &ring_[at];
    if (ring_[at].epoch < epoch) break;  // ring is epoch-ordered
  }
  return nullptr;
}

std::vector<CounterSample> diff_counters(
    const std::vector<CounterSample>& then,
    const std::vector<CounterSample>& now) {
  std::vector<CounterSample> out;
  std::size_t i = 0;
  for (const CounterSample& c : now) {
    while (i < then.size() && then[i].name < c.name) ++i;
    if (i < then.size() && then[i].name == c.name &&
        then[i].value == c.value) {
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::vector<GaugeSample> diff_gauges(const std::vector<GaugeSample>& then,
                                     const std::vector<GaugeSample>& now) {
  std::vector<GaugeSample> out;
  std::size_t i = 0;
  for (const GaugeSample& g : now) {
    while (i < then.size() && then[i].name < g.name) ++i;
    // Bit-pattern compare so NaN gauges don't look "changed" every epoch.
    if (i < then.size() && then[i].name == g.name &&
        std::bit_cast<std::uint64_t>(then[i].value) ==
            std::bit_cast<std::uint64_t>(g.value)) {
      continue;
    }
    out.push_back(g);
  }
  return out;
}

std::optional<MetricsDelta> Timeseries::delta_since(
    std::uint64_t since_epoch) const {
  const TimeseriesSample* now = latest();
  if (now == nullptr) return std::nullopt;
  MetricsDelta delta;
  delta.to_epoch = now->epoch;
  delta.epoch_ms = now->epoch_ms;
  delta.flush_us = now->flush_us;
  const TimeseriesSample* anchor =
      since_epoch != 0 ? find(since_epoch) : nullptr;
  if (anchor == nullptr || anchor->epoch >= now->epoch) {
    delta.baseline = true;
    delta.from_epoch = 0;
    delta.counters = now->counters;
    delta.gauges = now->gauges;
    return delta;
  }
  delta.from_epoch = anchor->epoch;
  delta.counters = diff_counters(anchor->counters, now->counters);
  delta.gauges = diff_gauges(anchor->gauges, now->gauges);
  return delta;
}

}  // namespace surfos::telemetry
