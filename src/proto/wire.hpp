// surfosd wire protocol: versioned, length-prefixed frames of TLV records.
//
// The daemon control channel (ROADMAP item 1, ka9q-radio's status/command
// packet architecture) runs over a byte stream — a Unix-domain socket today,
// UDP-sized frames by construction (every frame fits one datagram under the
// 1 MiB cap). Layout, all integers little-endian:
//
//   0..3   u32 payload length N (bytes after the 8-byte fixed header)
//   4      u8  protocol version (kProtoVersion)
//   5      u8  message type (MsgType)
//   6..7   u16 reserved (0)
//   8..15  u64 trace id — request: minted by the client (or 0 = "daemon
//          mints"); reply: ALWAYS the request's id echoed back, so the
//          PR 4/7 admit->applied trace join extends across the process
//          boundary (the daemon handles the request under a TraceScope of
//          this id, so its flight-recorder spans carry it too)
//   16..   N bytes of TLV records
//
// TLV record: u16 tag | u32 length | `length` value bytes. Tags are
// per-message (and per-struct, see proto/serialize.hpp) namespaces; readers
// MUST skip unknown tags, which is what lets an old client talk to a new
// daemon and vice versa. Compound values nest another TLV stream inside a
// record.
//
// Error handling is Result-based end to end (core/status.hpp): a malformed
// frame can never throw across the socket boundary, and decode errors carry
// the wire-stable codes kMalformedFrame / kUnsupportedVersion / kOutOfRange.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"

namespace surfos::proto {

inline constexpr std::uint8_t kProtoVersion = 1;
/// Fixed header: length + version + type + reserved + trace id.
inline constexpr std::size_t kFrameHeaderSize = 16;
/// Hard cap on a frame's TLV payload: anything larger is a malformed or
/// hostile peer, not a real control message.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Message types. Wire-stable: append only, never renumber.
enum class MsgType : std::uint8_t {
  kHello = 1,         ///< Version negotiation; payload: client max version.
  kHelloAck = 2,      ///< Chosen version + daemon identity.
  kSubmitDemand = 3,  ///< Queue an AppDemand through the admission queue.
  kStopApp = 4,
  kResumeApp = 5,
  kGetStatus = 6,
  kStatusReply = 7,
  kGetMetrics = 8,
  kMetricsReply = 9,
  // kStreamTraces pulls flight-recorder events with cursor-based
  // pagination. The recorder ring holds a bounded window; a one-shot dump
  // silently truncates to whatever that window holds. A paginated request
  // carries a cursor — the (ts_ns, span_id) pair of the last event the
  // client has seen, plus a page limit — and the reply returns events
  // strictly after that position in the recorder's (ts_ns, span_id) sort
  // order, the cursor for the next page, and a "done" flag once the buffer
  // is drained. Clients loop until done; events evicted by ring wraparound
  // between pages are simply skipped (never duplicated or torn) and show up
  // in the recorder's dropped() count. A request without cursor/limit tags
  // keeps the legacy one-shot Chrome-JSON reply.
  kStreamTraces = 10,  ///< Pull flight-recorder events (cursor-paginated).
  kTraceChunk = 11,
  kSnapshot = 12,  ///< Write a state snapshot to the daemon's snapshot path.
  kRestore = 13,   ///< Re-load state from the snapshot path.
  kSetKnob = 14,
  kGetKnobs = 15,
  kKnobsReply = 16,
  kShutdown = 17,
  kOk = 18,     ///< Generic success reply (payload per request type).
  kError = 19,  ///< Payload: u16 ErrorCode + string message.
  // Streaming subscriptions (PR 9). A client subscribes to a topic
  // (metrics | traces | health) at an epoch interval; the daemon pushes
  // kEvent frames from then on — the only server-initiated frames in the
  // protocol. Event payloads are delta-encoded against the subscriber's
  // last delivered epoch; a gap in the per-subscription sequence number
  // means the daemon dropped events for a slow reader (counted in the
  // kDroppedEvents tag) and the next metrics event is a full baseline.
  kSubscribe = 20,     ///< Open a subscription: topic, interval, filters.
  kSubscribeAck = 21,  ///< Subscription id + effective interval.
  kEvent = 22,         ///< Server-pushed topic event (delta payload).
  kUnsubscribe = 23,   ///< Close one subscription by id.
};

struct WireFrame {
  std::uint8_t version = kProtoVersion;
  MsgType type = MsgType::kHello;
  std::uint64_t trace_id = 0;
  std::vector<std::uint8_t> payload;  ///< TLV records.
};

/// Serializes a frame. Truncates nothing: payloads over kMaxFramePayload are
/// a caller bug and reported as kOutOfRange.
Result<std::vector<std::uint8_t>> encode_frame(const WireFrame& frame);

struct FrameDecode {
  std::optional<WireFrame> frame;  ///< Set on success.
  std::optional<Error> error;      ///< Set on a fatal (close-worthy) frame.
  /// Bytes consumed from the buffer; 0 means "incomplete, read more".
  std::size_t consumed = 0;
};

/// Attempts to decode one frame from the head of `bytes`. A frame whose
/// declared length exceeds kMaxFramePayload fails immediately (kOutOfRange)
/// without waiting for the bytes; a version we do not speak fails with
/// kUnsupportedVersion but still consumes the frame so the connection can
/// answer with a proper error reply.
FrameDecode try_decode_frame(std::span<const std::uint8_t> bytes);

// --- TLV records -------------------------------------------------------------

class TlvWriter {
 public:
  /// Appends into an external buffer (nested writers share one allocation).
  explicit TlvWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void put_u8(std::uint16_t tag, std::uint8_t v) { put(tag, &v, 1); }
  void put_u16(std::uint16_t tag, std::uint16_t v);
  void put_u32(std::uint16_t tag, std::uint32_t v);
  void put_u64(std::uint16_t tag, std::uint64_t v);
  /// IEEE-754 bit pattern as u64 — byte-exact round-trip, no printf detour.
  void put_f64(std::uint16_t tag, double v);
  void put_string(std::uint16_t tag, std::string_view v) {
    put(tag, reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
  }
  void put_bytes(std::uint16_t tag, std::span<const std::uint8_t> v) {
    put(tag, v.data(), v.size());
  }
  /// Packed vector of u64 (trace-id lists): 8 bytes per element.
  void put_u64s(std::uint16_t tag, std::span<const std::uint64_t> v);

 private:
  void put(std::uint16_t tag, const std::uint8_t* data, std::size_t size);

  std::vector<std::uint8_t>* out_;
};

struct Tlv {
  std::uint16_t tag = 0;
  std::span<const std::uint8_t> value;
};

/// Forward iterator over a TLV stream. A record whose declared length
/// overruns the buffer stops iteration with truncated() set — the caller
/// maps that to kMalformedFrame.
class TlvReader {
 public:
  explicit TlvReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Next record, or nullopt at end-of-stream / on truncation.
  std::optional<Tlv> next();
  bool truncated() const noexcept { return truncated_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
  bool truncated_ = false;
};

// Typed value parsers: exact-size checks, nullopt on mismatch (callers map
// to kMalformedFrame). Integers little-endian, f64 via u64 bit pattern.
std::optional<std::uint8_t> tlv_u8(const Tlv& tlv) noexcept;
std::optional<std::uint16_t> tlv_u16(const Tlv& tlv) noexcept;
std::optional<std::uint32_t> tlv_u32(const Tlv& tlv) noexcept;
std::optional<std::uint64_t> tlv_u64(const Tlv& tlv) noexcept;
std::optional<double> tlv_f64(const Tlv& tlv) noexcept;
std::string tlv_string(const Tlv& tlv);
std::optional<std::vector<std::uint64_t>> tlv_u64s(const Tlv& tlv);

}  // namespace surfos::proto
