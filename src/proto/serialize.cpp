#include "proto/serialize.hpp"

#include "proto/wire.hpp"

namespace surfos::proto {

namespace {

// Per-struct field tags. Append-only; tag 1 is the version everywhere.
namespace tag {
constexpr std::uint16_t kVersion = 1;

// StepTrace
constexpr std::uint16_t kScheduleUs = 2;
constexpr std::uint16_t kOptimizeUs = 3;
constexpr std::uint16_t kActuateUs = 4;
constexpr std::uint16_t kMeasureUs = 5;
constexpr std::uint16_t kTotalUs = 6;
constexpr std::uint16_t kPlansFresh = 7;
constexpr std::uint16_t kPlansReused = 8;
constexpr std::uint16_t kObjectiveEvals = 9;
constexpr std::uint16_t kConfigWrites = 10;
constexpr std::uint16_t kElementUpdates = 11;
constexpr std::uint16_t kWritesStaged = 12;
constexpr std::uint16_t kWritesCoalesced = 13;
constexpr std::uint16_t kWritesElided = 14;
constexpr std::uint16_t kTraceIds = 15;
constexpr std::uint16_t kTaskTraceIds = 16;

// TaskReport
constexpr std::uint16_t kTaskId = 2;
constexpr std::uint16_t kServiceType = 3;
constexpr std::uint16_t kTaskState = 4;
constexpr std::uint16_t kAchieved = 5;  // absent = nullopt
constexpr std::uint16_t kGoalMet = 6;

// StepReport
constexpr std::uint16_t kAssignments = 2;
constexpr std::uint16_t kOptimizations = 3;
constexpr std::uint16_t kStarved = 4;
constexpr std::uint16_t kTask = 5;  // repeated, nested TaskReport
constexpr std::uint16_t kStepTrace = 6;

// SiteReport (inside FleetReport)
constexpr std::uint16_t kSiteId = 2;
constexpr std::uint16_t kSiteStep = 3;

// FleetReport
constexpr std::uint16_t kSite = 2;  // repeated, nested SiteReport
constexpr std::uint16_t kTotalAssignments = 3;
constexpr std::uint16_t kTotalOptimizations = 4;
constexpr std::uint16_t kTotalStarved = 5;
constexpr std::uint16_t kFleetTrace = 6;

// InstallReport
constexpr std::uint16_t kDeviceId = 2;
constexpr std::uint16_t kWarning = 3;  // repeated

// AppDemand
constexpr std::uint16_t kAppClass = 2;
constexpr std::uint16_t kEndpointId = 3;
constexpr std::uint16_t kRegionId = 4;
constexpr std::uint16_t kThroughputMbps = 5;  // absent = nullopt
constexpr std::uint16_t kMaxLatencyMs = 6;    // absent = nullopt
constexpr std::uint16_t kNeedsSensing = 7;
constexpr std::uint16_t kNeedsSecurity = 8;
constexpr std::uint16_t kNeedsPower = 9;
constexpr std::uint16_t kDurationS = 10;  // absent = nullopt

// AppStatus
constexpr std::uint16_t kKnown = 2;
constexpr std::uint16_t kRunning = 3;
constexpr std::uint16_t kSatisfied = 4;
constexpr std::uint16_t kTasksTotal = 5;
constexpr std::uint16_t kTasksMet = 6;

// FleetInventory
constexpr std::uint16_t kSites = 2;
constexpr std::uint16_t kSurfaces = 3;
constexpr std::uint16_t kEndpoints = 4;
constexpr std::uint16_t kActiveTasks = 5;
constexpr std::uint16_t kTasksMeetingGoals = 6;
}  // namespace tag

Error malformed(const char* what) {
  return make_error(ErrorCode::kMalformedFrame, what);
}

// Exact-width field reads; false maps to kMalformedFrame at the call site.
bool get(const Tlv& tlv, double& out) {
  const auto v = tlv_f64(tlv);
  if (!v) return false;
  out = *v;
  return true;
}

bool get(const Tlv& tlv, std::uint64_t& out) {
  const auto v = tlv_u64(tlv);
  if (!v) return false;
  out = *v;
  return true;
}

/// Shared preamble check: every struct stream must open with a version tag
/// >= 1. Returns the version, or 0 for "malformed".
std::uint16_t take_version(const Tlv& tlv) {
  if (tlv.tag != tag::kVersion) return 0;
  return tlv_u16(tlv).value_or(0);
}

template <typename T>
std::vector<std::uint8_t> wrap(const T& value) {
  std::vector<std::uint8_t> out;
  to_wire(value, out);
  return out;
}

}  // namespace

// --- StepTrace ---------------------------------------------------------------

void to_wire(const orch::StepTrace& trace, std::vector<std::uint8_t>& out) {
  TlvWriter w(out);
  w.put_u16(tag::kVersion, kStructVersion);
  w.put_f64(tag::kScheduleUs, trace.schedule_us);
  w.put_f64(tag::kOptimizeUs, trace.optimize_us);
  w.put_f64(tag::kActuateUs, trace.actuate_us);
  w.put_f64(tag::kMeasureUs, trace.measure_us);
  w.put_f64(tag::kTotalUs, trace.total_us);
  w.put_u64(tag::kPlansFresh, trace.plans_fresh);
  w.put_u64(tag::kPlansReused, trace.plans_reused);
  w.put_u64(tag::kObjectiveEvals, trace.objective_evaluations);
  w.put_u64(tag::kConfigWrites, trace.config_writes);
  w.put_u64(tag::kElementUpdates, trace.element_updates);
  w.put_u64(tag::kWritesStaged, trace.writes_staged);
  w.put_u64(tag::kWritesCoalesced, trace.writes_coalesced);
  w.put_u64(tag::kWritesElided, trace.writes_elided);
  w.put_u64s(tag::kTraceIds, trace.trace_ids);
  w.put_u64s(tag::kTaskTraceIds, trace.task_trace_ids);
}

std::vector<std::uint8_t> to_wire(const orch::StepTrace& trace) {
  return wrap(trace);
}

Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       orch::StepTrace& out) {
  TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("StepTrace: missing version");
  }
  out = orch::StepTrace{};
  while (auto tlv = r.next()) {
    bool ok = true;
    switch (tlv->tag) {
      case tag::kScheduleUs: ok = get(*tlv, out.schedule_us); break;
      case tag::kOptimizeUs: ok = get(*tlv, out.optimize_us); break;
      case tag::kActuateUs: ok = get(*tlv, out.actuate_us); break;
      case tag::kMeasureUs: ok = get(*tlv, out.measure_us); break;
      case tag::kTotalUs: ok = get(*tlv, out.total_us); break;
      case tag::kPlansFresh: ok = get(*tlv, out.plans_fresh); break;
      case tag::kPlansReused: ok = get(*tlv, out.plans_reused); break;
      case tag::kObjectiveEvals: ok = get(*tlv, out.objective_evaluations); break;
      case tag::kConfigWrites: ok = get(*tlv, out.config_writes); break;
      case tag::kElementUpdates: ok = get(*tlv, out.element_updates); break;
      case tag::kWritesStaged: ok = get(*tlv, out.writes_staged); break;
      case tag::kWritesCoalesced: ok = get(*tlv, out.writes_coalesced); break;
      case tag::kWritesElided: ok = get(*tlv, out.writes_elided); break;
      case tag::kTraceIds: {
        auto ids = tlv_u64s(*tlv);
        if ((ok = ids.has_value())) out.trace_ids = std::move(*ids);
        break;
      }
      case tag::kTaskTraceIds: {
        auto ids = tlv_u64s(*tlv);
        if ((ok = ids.has_value())) out.task_trace_ids = std::move(*ids);
        break;
      }
      default: break;  // unknown tag: a newer peer's field — skip
    }
    if (!ok) return malformed("StepTrace: bad field width");
  }
  if (r.truncated()) return malformed("StepTrace: truncated record");
  return {};
}

// --- TaskReport --------------------------------------------------------------

void to_wire(const orch::TaskReport& report, std::vector<std::uint8_t>& out) {
  TlvWriter w(out);
  w.put_u16(tag::kVersion, kStructVersion);
  w.put_u64(tag::kTaskId, report.id);
  w.put_u8(tag::kServiceType, static_cast<std::uint8_t>(report.type));
  w.put_u8(tag::kTaskState, static_cast<std::uint8_t>(report.state));
  if (report.achieved) w.put_f64(tag::kAchieved, *report.achieved);
  w.put_u8(tag::kGoalMet, report.goal_met ? 1 : 0);
}

Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       orch::TaskReport& out) {
  TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("TaskReport: missing version");
  }
  out = orch::TaskReport{};
  while (auto tlv = r.next()) {
    bool ok = true;
    switch (tlv->tag) {
      case tag::kTaskId: ok = get(*tlv, out.id); break;
      case tag::kServiceType: {
        const auto v = tlv_u8(*tlv);
        ok = v.has_value() && *v <= static_cast<std::uint8_t>(
                                        orch::ServiceType::kSecurity);
        if (ok) out.type = static_cast<orch::ServiceType>(*v);
        break;
      }
      case tag::kTaskState: {
        const auto v = tlv_u8(*tlv);
        ok = v.has_value() &&
             *v <= static_cast<std::uint8_t>(orch::TaskState::kFailed);
        if (ok) out.state = static_cast<orch::TaskState>(*v);
        break;
      }
      case tag::kAchieved: {
        const auto v = tlv_f64(*tlv);
        if ((ok = v.has_value())) out.achieved = *v;
        break;
      }
      case tag::kGoalMet: {
        const auto v = tlv_u8(*tlv);
        if ((ok = v.has_value())) out.goal_met = *v != 0;
        break;
      }
      default: break;
    }
    if (!ok) return malformed("TaskReport: bad field");
  }
  if (r.truncated()) return malformed("TaskReport: truncated record");
  return {};
}

// --- StepReport --------------------------------------------------------------

void to_wire(const orch::StepReport& report, std::vector<std::uint8_t>& out) {
  TlvWriter w(out);
  w.put_u16(tag::kVersion, kStructVersion);
  w.put_u64(tag::kAssignments, report.assignment_count);
  w.put_u64(tag::kOptimizations, report.optimizations_run);
  w.put_u64s(tag::kStarved,
             std::span<const std::uint64_t>(report.starved.data(),
                                            report.starved.size()));
  for (const orch::TaskReport& task : report.tasks) {
    w.put_bytes(tag::kTask, wrap(task));
  }
  w.put_bytes(tag::kStepTrace, wrap(report.trace));
}

std::vector<std::uint8_t> to_wire(const orch::StepReport& report) {
  return wrap(report);
}

Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       orch::StepReport& out) {
  TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("StepReport: missing version");
  }
  out = orch::StepReport{};
  while (auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kAssignments: {
        const auto v = tlv_u64(*tlv);
        if (!v) return malformed("StepReport: bad assignment count");
        out.assignment_count = *v;
        break;
      }
      case tag::kOptimizations: {
        const auto v = tlv_u64(*tlv);
        if (!v) return malformed("StepReport: bad optimization count");
        out.optimizations_run = *v;
        break;
      }
      case tag::kStarved: {
        auto ids = tlv_u64s(*tlv);
        if (!ids) return malformed("StepReport: bad starved list");
        out.starved.assign(ids->begin(), ids->end());
        break;
      }
      case tag::kTask: {
        orch::TaskReport task;
        if (Result<void> parsed = from_wire(tlv->value, task); !parsed.ok()) {
          return parsed;
        }
        out.tasks.push_back(std::move(task));
        break;
      }
      case tag::kStepTrace: {
        if (Result<void> parsed = from_wire(tlv->value, out.trace);
            !parsed.ok()) {
          return parsed;
        }
        break;
      }
      default: break;
    }
  }
  if (r.truncated()) return malformed("StepReport: truncated record");
  return {};
}

// --- FleetReport -------------------------------------------------------------

void to_wire(const FleetReport& report, std::vector<std::uint8_t>& out) {
  TlvWriter w(out);
  w.put_u16(tag::kVersion, kStructVersion);
  for (const SiteReport& site : report.sites) {
    std::vector<std::uint8_t> nested;
    TlvWriter sw(nested);
    sw.put_u16(tag::kVersion, kStructVersion);
    sw.put_string(tag::kSiteId, site.site_id);
    sw.put_bytes(tag::kSiteStep, wrap(site.step));
    w.put_bytes(tag::kSite, nested);
  }
  w.put_u64(tag::kTotalAssignments, report.total_assignments);
  w.put_u64(tag::kTotalOptimizations, report.total_optimizations);
  w.put_u64(tag::kTotalStarved, report.total_starved);
  w.put_bytes(tag::kFleetTrace, wrap(report.trace));
}

std::vector<std::uint8_t> to_wire(const FleetReport& report) {
  return wrap(report);
}

Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       FleetReport& out) {
  TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("FleetReport: missing version");
  }
  out = FleetReport{};
  while (auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kSite: {
        SiteReport site;
        TlvReader sr(tlv->value);
        auto site_first = sr.next();
        if (!site_first || take_version(*site_first) == 0) {
          return malformed("SiteReport: missing version");
        }
        while (auto field = sr.next()) {
          switch (field->tag) {
            case tag::kSiteId: site.site_id = tlv_string(*field); break;
            case tag::kSiteStep: {
              if (Result<void> parsed = from_wire(field->value, site.step);
                  !parsed.ok()) {
                return parsed;
              }
              break;
            }
            default: break;
          }
        }
        if (sr.truncated()) return malformed("SiteReport: truncated record");
        out.sites.push_back(std::move(site));
        break;
      }
      case tag::kTotalAssignments: {
        const auto v = tlv_u64(*tlv);
        if (!v) return malformed("FleetReport: bad total assignments");
        out.total_assignments = *v;
        break;
      }
      case tag::kTotalOptimizations: {
        const auto v = tlv_u64(*tlv);
        if (!v) return malformed("FleetReport: bad total optimizations");
        out.total_optimizations = *v;
        break;
      }
      case tag::kTotalStarved: {
        const auto v = tlv_u64(*tlv);
        if (!v) return malformed("FleetReport: bad total starved");
        out.total_starved = *v;
        break;
      }
      case tag::kFleetTrace: {
        if (Result<void> parsed = from_wire(tlv->value, out.trace);
            !parsed.ok()) {
          return parsed;
        }
        break;
      }
      default: break;
    }
  }
  if (r.truncated()) return malformed("FleetReport: truncated record");
  return {};
}

// --- InstallReport -----------------------------------------------------------

void to_wire(const InstallReport& report, std::vector<std::uint8_t>& out) {
  TlvWriter w(out);
  w.put_u16(tag::kVersion, kStructVersion);
  w.put_string(tag::kDeviceId, report.device_id);
  for (const std::string& warning : report.warnings) {
    w.put_string(tag::kWarning, warning);
  }
}

std::vector<std::uint8_t> to_wire(const InstallReport& report) {
  return wrap(report);
}

Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       InstallReport& out) {
  TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("InstallReport: missing version");
  }
  out = InstallReport{};
  while (auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kDeviceId: out.device_id = tlv_string(*tlv); break;
      case tag::kWarning: out.warnings.push_back(tlv_string(*tlv)); break;
      default: break;
    }
  }
  if (r.truncated()) return malformed("InstallReport: truncated record");
  return {};
}

// --- AppDemand ---------------------------------------------------------------

void to_wire(const broker::AppDemand& demand, std::vector<std::uint8_t>& out) {
  TlvWriter w(out);
  w.put_u16(tag::kVersion, kStructVersion);
  w.put_u8(tag::kAppClass, static_cast<std::uint8_t>(demand.app_class));
  w.put_string(tag::kEndpointId, demand.endpoint_id);
  w.put_string(tag::kRegionId, demand.region_id);
  if (demand.throughput_mbps) {
    w.put_f64(tag::kThroughputMbps, *demand.throughput_mbps);
  }
  if (demand.max_latency_ms) {
    w.put_f64(tag::kMaxLatencyMs, *demand.max_latency_ms);
  }
  w.put_u8(tag::kNeedsSensing, demand.needs_sensing ? 1 : 0);
  w.put_u8(tag::kNeedsSecurity, demand.needs_security ? 1 : 0);
  w.put_u8(tag::kNeedsPower, demand.needs_power ? 1 : 0);
  if (demand.duration_s) w.put_f64(tag::kDurationS, *demand.duration_s);
}

std::vector<std::uint8_t> to_wire(const broker::AppDemand& demand) {
  return wrap(demand);
}

Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       broker::AppDemand& out) {
  TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("AppDemand: missing version");
  }
  out = broker::AppDemand{};
  while (auto tlv = r.next()) {
    bool ok = true;
    switch (tlv->tag) {
      case tag::kAppClass: {
        const auto v = tlv_u8(*tlv);
        ok = v.has_value() && *v <= static_cast<std::uint8_t>(
                                        broker::AppClass::kWirelessCharging);
        if (ok) out.app_class = static_cast<broker::AppClass>(*v);
        break;
      }
      case tag::kEndpointId: out.endpoint_id = tlv_string(*tlv); break;
      case tag::kRegionId: out.region_id = tlv_string(*tlv); break;
      case tag::kThroughputMbps: {
        const auto v = tlv_f64(*tlv);
        if ((ok = v.has_value())) out.throughput_mbps = *v;
        break;
      }
      case tag::kMaxLatencyMs: {
        const auto v = tlv_f64(*tlv);
        if ((ok = v.has_value())) out.max_latency_ms = *v;
        break;
      }
      case tag::kNeedsSensing: {
        const auto v = tlv_u8(*tlv);
        if ((ok = v.has_value())) out.needs_sensing = *v != 0;
        break;
      }
      case tag::kNeedsSecurity: {
        const auto v = tlv_u8(*tlv);
        if ((ok = v.has_value())) out.needs_security = *v != 0;
        break;
      }
      case tag::kNeedsPower: {
        const auto v = tlv_u8(*tlv);
        if ((ok = v.has_value())) out.needs_power = *v != 0;
        break;
      }
      case tag::kDurationS: {
        const auto v = tlv_f64(*tlv);
        if ((ok = v.has_value())) out.duration_s = *v;
        break;
      }
      default: break;
    }
    if (!ok) return malformed("AppDemand: bad field");
  }
  if (r.truncated()) return malformed("AppDemand: truncated record");
  return {};
}

// --- AppStatus ---------------------------------------------------------------

void to_wire(const broker::AppStatus& status, std::vector<std::uint8_t>& out) {
  TlvWriter w(out);
  w.put_u16(tag::kVersion, kStructVersion);
  w.put_u8(tag::kKnown, status.known ? 1 : 0);
  w.put_u8(tag::kRunning, status.running ? 1 : 0);
  w.put_u8(tag::kSatisfied, status.satisfied ? 1 : 0);
  w.put_u64(tag::kTasksTotal, status.tasks_total);
  w.put_u64(tag::kTasksMet, status.tasks_met);
}

std::vector<std::uint8_t> to_wire(const broker::AppStatus& status) {
  return wrap(status);
}

Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       broker::AppStatus& out) {
  TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("AppStatus: missing version");
  }
  out = broker::AppStatus{};
  while (auto tlv = r.next()) {
    bool ok = true;
    switch (tlv->tag) {
      case tag::kKnown: {
        const auto v = tlv_u8(*tlv);
        if ((ok = v.has_value())) out.known = *v != 0;
        break;
      }
      case tag::kRunning: {
        const auto v = tlv_u8(*tlv);
        if ((ok = v.has_value())) out.running = *v != 0;
        break;
      }
      case tag::kSatisfied: {
        const auto v = tlv_u8(*tlv);
        if ((ok = v.has_value())) out.satisfied = *v != 0;
        break;
      }
      case tag::kTasksTotal: ok = get(*tlv, out.tasks_total); break;
      case tag::kTasksMet: ok = get(*tlv, out.tasks_met); break;
      default: break;
    }
    if (!ok) return malformed("AppStatus: bad field");
  }
  if (r.truncated()) return malformed("AppStatus: truncated record");
  return {};
}

// --- FleetInventory ----------------------------------------------------------

void to_wire(const FleetInventory& inventory, std::vector<std::uint8_t>& out) {
  TlvWriter w(out);
  w.put_u16(tag::kVersion, kStructVersion);
  w.put_u64(tag::kSites, inventory.sites);
  w.put_u64(tag::kSurfaces, inventory.surfaces);
  w.put_u64(tag::kEndpoints, inventory.endpoints);
  w.put_u64(tag::kActiveTasks, inventory.active_tasks);
  w.put_u64(tag::kTasksMeetingGoals, inventory.tasks_meeting_goals);
}

std::vector<std::uint8_t> to_wire(const FleetInventory& inventory) {
  return wrap(inventory);
}

Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       FleetInventory& out) {
  TlvReader r(bytes);
  auto first = r.next();
  if (!first || take_version(*first) == 0) {
    return malformed("FleetInventory: missing version");
  }
  out = FleetInventory{};
  while (auto tlv = r.next()) {
    bool ok = true;
    switch (tlv->tag) {
      case tag::kSites: ok = get(*tlv, out.sites); break;
      case tag::kSurfaces: ok = get(*tlv, out.surfaces); break;
      case tag::kEndpoints: ok = get(*tlv, out.endpoints); break;
      case tag::kActiveTasks: ok = get(*tlv, out.active_tasks); break;
      case tag::kTasksMeetingGoals: ok = get(*tlv, out.tasks_meeting_goals); break;
      default: break;
    }
    if (!ok) return malformed("FleetInventory: bad field");
  }
  if (r.truncated()) return malformed("FleetInventory: truncated record");
  return {};
}

}  // namespace surfos::proto
