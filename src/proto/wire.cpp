#include "proto/wire.hpp"

#include <bit>
#include <cstring>

namespace surfos::proto {

namespace {

void append_le(std::vector<std::uint8_t>& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t read_le(std::span<const std::uint8_t> in, std::size_t at,
                      int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

Result<std::vector<std::uint8_t>> encode_frame(const WireFrame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    return {ErrorCode::kOutOfRange,
            "frame payload " + std::to_string(frame.payload.size()) +
                " exceeds cap " + std::to_string(kMaxFramePayload)};
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  append_le(out, frame.payload.size(), 4);
  out.push_back(frame.version);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  append_le(out, 0, 2);  // reserved
  append_le(out, frame.trace_id, 8);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

FrameDecode try_decode_frame(std::span<const std::uint8_t> bytes) {
  FrameDecode result;
  if (bytes.size() < kFrameHeaderSize) return result;  // need more
  const std::uint64_t length = read_le(bytes, 0, 4);
  if (length > kMaxFramePayload) {
    // Never wait for (or allocate) a hostile length; the connection is done.
    result.error = make_error(
        ErrorCode::kOutOfRange,
        "declared payload " + std::to_string(length) + " exceeds cap");
    result.consumed = bytes.size();
    return result;
  }
  if (bytes.size() < kFrameHeaderSize + length) return result;  // need more

  WireFrame frame;
  frame.version = bytes[4];
  const std::uint8_t type = bytes[5];
  frame.trace_id = read_le(bytes, 8, 8);
  result.consumed = kFrameHeaderSize + static_cast<std::size_t>(length);
  if (frame.version != kProtoVersion) {
    // Consume the whole frame: the server can still send a typed error
    // reply echoing the trace id instead of dropping the connection cold.
    result.error = make_error(ErrorCode::kUnsupportedVersion,
                              "protocol version " +
                                  std::to_string(frame.version) +
                                  " not supported (speak " +
                                  std::to_string(kProtoVersion) + ")");
    return result;
  }
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kUnsubscribe)) {
    result.error = make_error(ErrorCode::kUnknownCommand,
                              "unknown message type " + std::to_string(type));
    return result;
  }
  frame.type = static_cast<MsgType>(type);
  frame.payload.assign(bytes.begin() + kFrameHeaderSize,
                       bytes.begin() + static_cast<std::ptrdiff_t>(
                                           kFrameHeaderSize + length));
  result.frame = std::move(frame);
  return result;
}

// --- TlvWriter ---------------------------------------------------------------

void TlvWriter::put(std::uint16_t tag, const std::uint8_t* data,
                    std::size_t size) {
  append_le(*out_, tag, 2);
  append_le(*out_, size, 4);
  out_->insert(out_->end(), data, data + size);
}

void TlvWriter::put_u16(std::uint16_t tag, std::uint16_t v) {
  append_le(*out_, tag, 2);
  append_le(*out_, 2, 4);
  append_le(*out_, v, 2);
}

void TlvWriter::put_u32(std::uint16_t tag, std::uint32_t v) {
  append_le(*out_, tag, 2);
  append_le(*out_, 4, 4);
  append_le(*out_, v, 4);
}

void TlvWriter::put_u64(std::uint16_t tag, std::uint64_t v) {
  append_le(*out_, tag, 2);
  append_le(*out_, 8, 4);
  append_le(*out_, v, 8);
}

void TlvWriter::put_f64(std::uint16_t tag, double v) {
  put_u64(tag, std::bit_cast<std::uint64_t>(v));
}

void TlvWriter::put_u64s(std::uint16_t tag,
                         std::span<const std::uint64_t> v) {
  append_le(*out_, tag, 2);
  append_le(*out_, v.size() * 8, 4);
  for (const std::uint64_t x : v) append_le(*out_, x, 8);
}

// --- TlvReader ---------------------------------------------------------------

std::optional<Tlv> TlvReader::next() {
  if (truncated_ || at_ >= bytes_.size()) return std::nullopt;
  if (bytes_.size() - at_ < 6) {
    truncated_ = true;
    return std::nullopt;
  }
  Tlv tlv;
  tlv.tag = static_cast<std::uint16_t>(read_le(bytes_, at_, 2));
  const std::uint64_t length = read_le(bytes_, at_ + 2, 4);
  at_ += 6;
  if (bytes_.size() - at_ < length) {
    truncated_ = true;
    return std::nullopt;
  }
  tlv.value = bytes_.subspan(at_, static_cast<std::size_t>(length));
  at_ += static_cast<std::size_t>(length);
  return tlv;
}

// --- Typed value parsers -----------------------------------------------------

std::optional<std::uint8_t> tlv_u8(const Tlv& tlv) noexcept {
  if (tlv.value.size() != 1) return std::nullopt;
  return tlv.value[0];
}

std::optional<std::uint16_t> tlv_u16(const Tlv& tlv) noexcept {
  if (tlv.value.size() != 2) return std::nullopt;
  return static_cast<std::uint16_t>(read_le(tlv.value, 0, 2));
}

std::optional<std::uint32_t> tlv_u32(const Tlv& tlv) noexcept {
  if (tlv.value.size() != 4) return std::nullopt;
  return static_cast<std::uint32_t>(read_le(tlv.value, 0, 4));
}

std::optional<std::uint64_t> tlv_u64(const Tlv& tlv) noexcept {
  if (tlv.value.size() != 8) return std::nullopt;
  return read_le(tlv.value, 0, 8);
}

std::optional<double> tlv_f64(const Tlv& tlv) noexcept {
  const auto bits = tlv_u64(tlv);
  if (!bits) return std::nullopt;
  return std::bit_cast<double>(*bits);
}

std::string tlv_string(const Tlv& tlv) {
  return std::string(reinterpret_cast<const char*>(tlv.value.data()),
                     tlv.value.size());
}

std::optional<std::vector<std::uint64_t>> tlv_u64s(const Tlv& tlv) {
  if (tlv.value.size() % 8 != 0) return std::nullopt;
  std::vector<std::uint64_t> out(tlv.value.size() / 8);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = read_le(tlv.value, i * 8, 8);
  }
  return out;
}

}  // namespace surfos::proto
