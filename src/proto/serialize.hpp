// Versioned to_wire/from_wire for the control-plane report and demand
// structs — the payloads of the surfosd protocol (proto/wire.hpp) and of the
// crash/restart snapshot (daemon/snapshot.hpp).
//
// Encoding contract, shared by every struct here:
//   - tag 1 is always a u16 struct version (kStructVersion). Parsers accept
//     any version >= 1 — newer minor versions only *add* tags, and unknown
//     tags are skipped — so an old client reads the fields it knows from a
//     new daemon's reply. Version 0 (or a missing version tag) is malformed.
//   - every field has an explicit tag; tags are append-only and never reused.
//   - encoding is deterministic: fixed field order, fixed-width little-endian
//     integers, f64 as IEEE bit patterns. Two equal structs serialize to
//     identical bytes (the snapshot/restore drill's byte-identity check
//     leans on this).
//   - from_wire returns Result (core/status.hpp): kMalformedFrame on
//     structural damage, never an exception — these parsers face wire input.
//
// These are free functions rather than struct methods so orch/core/broker
// stay independent of the wire layer (surfos_proto links surfos_core, not
// the other way around).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "broker/broker.hpp"
#include "broker/demand.hpp"
#include "core/fleet.hpp"
#include "core/status.hpp"
#include "core/surfos.hpp"
#include "orch/orchestrator.hpp"

namespace surfos::proto {

/// Current encoding version of every struct below. Bump only when a field's
/// meaning changes (adding tags does NOT bump it).
inline constexpr std::uint16_t kStructVersion = 1;

// Each pair: append-into-buffer (for nesting) and fresh-vector convenience;
// from_wire fills `out` and reports kMalformedFrame/kUnsupportedVersion.

void to_wire(const orch::StepTrace& trace, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> to_wire(const orch::StepTrace& trace);
Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       orch::StepTrace& out);

void to_wire(const orch::TaskReport& report, std::vector<std::uint8_t>& out);
Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       orch::TaskReport& out);

void to_wire(const orch::StepReport& report, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> to_wire(const orch::StepReport& report);
Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       orch::StepReport& out);

void to_wire(const FleetReport& report, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> to_wire(const FleetReport& report);
Result<void> from_wire(std::span<const std::uint8_t> bytes, FleetReport& out);

void to_wire(const InstallReport& report, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> to_wire(const InstallReport& report);
Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       InstallReport& out);

void to_wire(const broker::AppDemand& demand, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> to_wire(const broker::AppDemand& demand);
Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       broker::AppDemand& out);

void to_wire(const broker::AppStatus& status, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> to_wire(const broker::AppStatus& status);
Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       broker::AppStatus& out);

void to_wire(const FleetInventory& inventory, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> to_wire(const FleetInventory& inventory);
Result<void> from_wire(std::span<const std::uint8_t> bytes,
                       FleetInventory& out);

}  // namespace surfos::proto
