#include "broker/translate.hpp"

#include <cmath>

#include "util/units.hpp"

namespace surfos::broker {

double required_snr_db(double throughput_mbps, const em::LinkBudget& budget,
                       const TranslationOptions& options) {
  // App goodput -> PHY rate the link must sustain during its share.
  const double phy_rate_bps = throughput_mbps * 1e6 /
                              (options.mac_efficiency *
                               options.assumed_time_share);
  // Inverse Shannon: snr = 2^(R/B) - 1, then add the implementation gap and
  // operating margin.
  const double spectral = phy_rate_bps / budget.bandwidth_hz;
  const double snr_linear = std::pow(2.0, spectral) - 1.0;
  return util::to_db(std::max(snr_linear, 1e-12)) + options.shannon_gap_db +
         options.snr_margin_db;
}

orch::Priority priority_for_latency(double max_latency_ms) {
  if (max_latency_ms <= 20.0) return orch::kPriorityCritical;
  if (max_latency_ms <= 100.0) return orch::kPriorityInteractive;
  if (max_latency_ms <= 500.0) return orch::kPriorityNormal;
  return orch::kPriorityBackground;
}

std::vector<ServiceRequest> translate(const AppDemand& demand,
                                      const em::LinkBudget& budget,
                                      const geom::SampleGrid& region,
                                      const TranslationOptions& options) {
  std::vector<ServiceRequest> out;

  if (demand.throughput_mbps) {
    orch::LinkGoal link;
    link.endpoint_id = demand.endpoint_id;
    link.target_snr_db = required_snr_db(*demand.throughput_mbps, budget,
                                         options);
    link.max_latency_ms = demand.max_latency_ms.value_or(1000.0);
    out.push_back({link, priority_for_latency(link.max_latency_ms)});
  }

  if (demand.needs_sensing) {
    orch::SensingGoal sensing;
    sensing.region_id = demand.region_id;
    sensing.region = region;
    sensing.mode = orch::SensingMode::kTracking;
    sensing.duration_s = demand.duration_s.value_or(3600.0);
    out.push_back({sensing, orch::kPriorityNormal});
  }

  if (demand.needs_security) {
    orch::SecurityGoal security;
    security.region_id = demand.region_id;
    security.region = region;
    out.push_back({security, orch::kPriorityCritical});
  }

  if (demand.needs_power) {
    orch::PowerGoal power;
    power.endpoint_id = demand.endpoint_id;
    power.duration_s = demand.duration_s.value_or(3600.0);
    out.push_back({power, orch::kPriorityBackground});
  }

  return out;
}

}  // namespace surfos::broker
