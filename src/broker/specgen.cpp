#include "broker/specgen.hpp"

#include <cmath>

#include "em/propagation.hpp"
#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"

namespace surfos::broker {

namespace {

using util::contains;
using util::to_lower;
using util::trim;

std::optional<em::Band> band_from_ghz(double ghz) {
  if (ghz >= 0.7 && ghz < 1.5) return em::Band::kSub1GHz;
  if (ghz >= 2.0 && ghz < 3.5) return em::Band::k2_4GHz;
  if (ghz >= 4.5 && ghz < 7.5) return em::Band::k5GHz;
  if (ghz >= 20.0 && ghz < 26.0) return em::Band::k24GHz;
  if (ghz >= 26.0 && ghz < 40.0) return em::Band::k28GHz;
  if (ghz >= 50.0 && ghz < 75.0) return em::Band::k60GHz;
  return std::nullopt;
}

/// Parses "<number> <unit>" with unit scaling into a base unit.
std::optional<double> parse_scaled(std::string_view text,
                                   std::initializer_list<
                                       std::pair<const char*, double>>
                                       units) {
  const std::string lowered = to_lower(trim(text));
  for (const auto& [suffix, scale] : units) {
    const auto at = lowered.find(suffix);
    if (at == std::string::npos) continue;
    double value = 0.0;
    if (util::parse_double(trim(std::string_view(lowered).substr(0, at)),
                           value)) {
      return value * scale;
    }
  }
  double bare = 0.0;
  if (util::parse_double(lowered, bare)) return bare;
  return std::nullopt;
}

}  // namespace

hal::HardwareSpec DriverBlueprint::to_spec() const {
  hal::HardwareSpec spec;
  spec.model = model;
  spec.op_mode = op_mode;
  spec.reconfigurability = reconfigurability;
  spec.granularity = granularity;
  spec.band_response[band] = 0.9;
  spec.control_delay_us =
      reconfigurability == surface::Reconfigurability::kPassive
          ? hal::kInfiniteDelay
          : control_delay_us;
  spec.config_slots =
      reconfigurability == surface::Reconfigurability::kPassive ? 1
                                                                : config_slots;
  spec.power_mw = reconfigurability == surface::Reconfigurability::kPassive
                      ? 0.0
                      : 0.05 * static_cast<double>(rows * cols);
  return spec;
}

SpecGenResult parse_datasheet(const std::string& text) {
  SURFOS_COUNT("broker.datasheets.parsed");
  SpecGenResult result;
  DriverBlueprint bp;
  bool have_model = false;
  bool have_band = false;
  bool spacing_set = false;

  for (const auto raw_line : util::split(text, '\n')) {
    const auto line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      result.warnings.push_back("no key: " + std::string(line));
      continue;
    }
    const std::string key = to_lower(trim(line.substr(0, colon)));
    const std::string_view value = trim(line.substr(colon + 1));
    const std::string value_lower = to_lower(value);

    if (key == "model" || key == "name") {
      bp.model = std::string(value);
      have_model = true;
    } else if (key == "frequency" || key == "band") {
      const auto hz = parse_scaled(value, {{"ghz", 1e9}, {"mhz", 1e6}});
      const auto band = hz ? band_from_ghz(*hz / 1e9) : std::nullopt;
      if (band) {
        bp.band = *band;
        have_band = true;
      } else {
        result.warnings.push_back("unparsable frequency: " +
                                  std::string(value));
      }
    } else if (key == "mode" || key == "operation") {
      if (contains(value_lower, "transflect") ||
          (contains(value_lower, "t") && contains(value_lower, "r") &&
           contains(value_lower, "&"))) {
        bp.op_mode = surface::OperationMode::kTransflective;
      } else if (contains(value_lower, "transmis")) {
        bp.op_mode = surface::OperationMode::kTransmissive;
      } else if (contains(value_lower, "reflect")) {
        bp.op_mode = surface::OperationMode::kReflective;
      } else {
        result.warnings.push_back("unknown mode: " + std::string(value));
      }
    } else if (key == "reconfigurable" || key == "reconfigurability") {
      if (contains(value_lower, "no") || contains(value_lower, "passive") ||
          contains(value_lower, "one-time")) {
        bp.reconfigurability = surface::Reconfigurability::kPassive;
      } else {
        bp.reconfigurability = surface::Reconfigurability::kProgrammable;
        if (contains(value_lower, "column")) {
          bp.granularity = surface::ControlGranularity::kColumn;
        } else if (contains(value_lower, "row")) {
          bp.granularity = surface::ControlGranularity::kRow;
        } else {
          bp.granularity = surface::ControlGranularity::kElement;
        }
      }
    } else if (key == "elements" || key == "array") {
      const auto x_at = value_lower.find('x');
      std::uint64_t rows = 0;
      std::uint64_t cols = 0;
      if (x_at != std::string::npos &&
          util::parse_uint(trim(std::string_view(value_lower).substr(0, x_at)),
                           rows) &&
          util::parse_uint(trim(std::string_view(value_lower).substr(x_at + 1)),
                           cols) &&
          rows > 0 && cols > 0) {
        bp.rows = rows;
        bp.cols = cols;
      } else {
        result.warnings.push_back("unparsable elements: " +
                                  std::string(value));
      }
    } else if (key == "spacing" || key == "pitch") {
      if (contains(value_lower, "half-wavelength") ||
          contains(value_lower, "lambda/2")) {
        spacing_set = false;  // resolved after the band is known
      } else if (const auto m = parse_scaled(
                     value, {{"mm", 1e-3}, {"cm", 1e-2}, {"m", 1.0}})) {
        bp.element.spacing_m = *m;
        spacing_set = true;
      } else {
        result.warnings.push_back("unparsable spacing: " + std::string(value));
      }
    } else if (key == "phase_bits" || key == "phase bits") {
      std::uint64_t bits = 0;
      if (util::parse_uint(value, bits) && bits <= 8) {
        bp.element.phase_bits = static_cast<int>(bits);
      } else {
        result.warnings.push_back("unparsable phase_bits: " +
                                  std::string(value));
      }
    } else if (key == "insertion_loss" || key == "loss") {
      if (const auto db = parse_scaled(value, {{"db", 1.0}})) {
        bp.element.insertion_loss_db = *db;
      } else {
        result.warnings.push_back("unparsable loss: " + std::string(value));
      }
    } else if (key == "control_delay" || key == "latency") {
      if (const auto us = parse_scaled(
              value, {{"ms", 1e3}, {"us", 1.0}, {"s", 1e6}})) {
        bp.control_delay_us = static_cast<hal::Micros>(*us);
      } else {
        result.warnings.push_back("unparsable control_delay: " +
                                  std::string(value));
      }
    } else if (key == "slots" || key == "configurations") {
      std::uint64_t slots = 0;
      if (util::parse_uint(value, slots) && slots >= 1 && slots <= 256) {
        bp.config_slots = slots;
      } else {
        result.warnings.push_back("unparsable slots: " + std::string(value));
      }
    } else {
      result.warnings.push_back("unknown key: " + key);
    }
  }

  if (!have_model || !have_band) {
    result.warnings.push_back("datasheet missing required model/frequency");
    SURFOS_COUNT_N("broker.datasheets.warnings", result.warnings.size());
    return result;
  }
  if (!spacing_set) {
    bp.element.spacing_m = em::wavelength(em::band_center(bp.band)) / 2.0;
  }
  result.blueprint = std::move(bp);
  SURFOS_COUNT_N("broker.datasheets.warnings", result.warnings.size());
  return result;
}

surface::SurfacePanel build_panel(const DriverBlueprint& blueprint,
                                  const geom::Frame& pose) {
  return surface::SurfacePanel(
      blueprint.model, pose, blueprint.rows, blueprint.cols, blueprint.element,
      blueprint.op_mode, blueprint.reconfigurability, blueprint.granularity);
}

std::unique_ptr<hal::SurfaceDriver> synthesize_driver(
    const DriverBlueprint& blueprint, const surface::SurfacePanel* panel,
    std::string device_id, const hal::SimClock* clock) {
  if (blueprint.reconfigurability == surface::Reconfigurability::kPassive) {
    return std::make_unique<hal::PassiveSurfaceDriver>(
        std::move(device_id), panel, blueprint.to_spec());
  }
  return std::make_unique<hal::ProgrammableSurfaceDriver>(
      std::move(device_id), panel, blueprint.to_spec(), clock);
}

}  // namespace surfos::broker
