// Traffic monitor: inferring application demands from observed wireless
// traffic (paper 3.3: "We can potentially sense or monitor wireless traffic
// to understand user demands").
//
// The monitor ingests per-endpoint packet records, extracts flow features
// over a sliding window (rates, direction symmetry, inter-packet cadence),
// classifies the running application archetype, and emits demand
// suggestions the broker can turn into service calls — letting SurfOS serve
// applications that never talk to it explicitly. A synthetic traffic
// generator for each archetype backs the tests and benches.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "broker/demand.hpp"
#include "hal/clock.hpp"
#include "util/rng.hpp"

namespace surfos::broker {

enum class Direction { kDownlink, kUplink };

struct PacketRecord {
  hal::Micros timestamp = 0;
  Direction direction = Direction::kDownlink;
  std::size_t bytes = 0;
};

/// Flow features over an observation window.
struct FlowFeatures {
  double down_mbps = 0.0;
  double up_mbps = 0.0;
  double symmetry = 0.0;       ///< up / (up + down) in [0, 1].
  double mean_gap_ms = 0.0;    ///< Mean inter-packet gap (downlink).
  double gap_jitter = 0.0;     ///< Coefficient of variation of the gaps.
  std::size_t packets = 0;

  double total_mbps() const noexcept { return down_mbps + up_mbps; }
};

/// Computes features from records inside [window_start, window_end].
FlowFeatures extract_features(const std::vector<PacketRecord>& records,
                              hal::Micros window_start,
                              hal::Micros window_end);

struct Classification {
  AppClass app_class = AppClass::kFileTransfer;
  double confidence = 0.0;  ///< [0, 1], heuristic.
};

/// Rule-based archetype classifier over flow features.
/// Returns nullopt for near-idle flows.
std::optional<Classification> classify(const FlowFeatures& features);

struct DemandSuggestion {
  std::string endpoint_id;
  Classification classification;
  FlowFeatures features;
};

class TrafficMonitor {
 public:
  explicit TrafficMonitor(hal::Micros window_us = 2 * hal::kMicrosPerSecond)
      : window_us_(window_us) {}

  void ingest(const std::string& endpoint_id, PacketRecord record);

  /// Classify every endpoint's current window; prunes records older than
  /// the window.
  std::vector<DemandSuggestion> analyze(hal::Micros now);

  std::size_t tracked_endpoints() const noexcept { return flows_.size(); }

 private:
  hal::Micros window_us_;
  std::map<std::string, std::vector<PacketRecord>> flows_;
};

/// Synthesizes a window of traffic with an archetype's signature
/// (deterministic given the seed). Records are sorted by timestamp.
std::vector<PacketRecord> synthesize_traffic(AppClass app_class,
                                             hal::Micros start,
                                             hal::Micros duration,
                                             util::Rng& rng);

}  // namespace surfos::broker
