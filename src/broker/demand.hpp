// Application-level demand descriptors (paper 3.3): what end-user
// applications actually need — throughput, latency, sensing, security,
// power — before any translation to signal-level service goals.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace surfos::broker {

/// The application archetypes the paper motivates: "VR/AR gaming needs high
/// throughput and low latency, smart home applications need sensing
/// capability, while sensitive data transmission necessitates added security
/// protection."
enum class AppClass {
  kVrGaming,
  kVideoStreaming,
  kVideoConference,
  kFileTransfer,
  kSmartHome,
  kSensitiveData,
  kWirelessCharging,
};

constexpr const char* to_string(AppClass c) noexcept {
  switch (c) {
    case AppClass::kVrGaming: return "vr-gaming";
    case AppClass::kVideoStreaming: return "video-streaming";
    case AppClass::kVideoConference: return "video-conference";
    case AppClass::kFileTransfer: return "file-transfer";
    case AppClass::kSmartHome: return "smart-home";
    case AppClass::kSensitiveData: return "sensitive-data";
    case AppClass::kWirelessCharging: return "wireless-charging";
  }
  return "?";
}

struct AppDemand {
  AppClass app_class = AppClass::kFileTransfer;
  std::string endpoint_id;              ///< Serving device, when applicable.
  std::string region_id;                ///< Region of interest, when applicable.
  std::optional<double> throughput_mbps;
  std::optional<double> max_latency_ms;
  bool needs_sensing = false;
  bool needs_security = false;
  bool needs_power = false;
  std::optional<double> duration_s;
};

/// Canonical demand profile for an application class — the defaults the
/// broker assumes when the app gives no explicit numbers.
AppDemand demand_profile(AppClass app_class, std::string endpoint_id,
                         std::string region_id = {});

}  // namespace surfos::broker
