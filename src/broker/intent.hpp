// Intent engine: natural-language user demands -> SurfOS service calls.
//
// Stands in for the paper's GPT-4o workflow (Fig 6) with a deterministic
// grammar: tokenize, detect activities (VR gaming, meetings, streaming,
// charging, tracking, privacy, coverage), extract entities (device, room,
// durations, numeric targets), then expand each activity through the demand
// profiles + translation layer into the same service calls the paper shows
// (enhance_link, enable_sensing, optimize_coverage, init_powering). The
// substitution preserves the architectural point — user intent drives the
// clean service API — without a network-attached model; a real LLM can be
// dropped in behind the same interface.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "broker/demand.hpp"

namespace surfos::broker {

/// One rendered service call, e.g.
///   enhance_link("VR_headset", snr=30.0, latency=10.0)
struct ServiceCall {
  std::string function;
  std::vector<std::string> positional;           ///< Quoted string args.
  std::vector<std::pair<std::string, double>> named;  ///< key=value args.

  std::string render() const;
};

struct IntentResult {
  std::vector<AppClass> activities;   ///< Detected, in textual order.
  std::vector<ServiceCall> calls;     ///< Expanded service calls.
  std::string device;                 ///< Best-guess serving device.
  std::string room;                   ///< Best-guess region.
  bool understood = false;            ///< False when nothing matched.
};

struct IntentContext {
  std::string default_room = "this_room";
  std::string default_device = "laptop";
  double bandwidth_hz = 400e6;  ///< For throughput -> SNR expansion.
};

class IntentEngine {
 public:
  explicit IntentEngine(IntentContext context = {});

  /// Parses one user utterance into service calls.
  IntentResult interpret(const std::string& utterance) const;

 private:
  IntentContext context_;
};

}  // namespace surfos::broker
