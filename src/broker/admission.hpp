// Fleet-scale admission control for the service broker (paper 3.3).
//
// A single site serves a handful of apps and can start them synchronously;
// a fleet-scale control plane takes demand arrivals faster than the
// orchestrator can absorb them. AdmissionQueue decouples the two: demands
// are submitted with a priority class, wait in a bounded queue, and drain
// through a weighted-fair scheduler with per-app token budgets, so one
// chatty app cannot monopolize a control epoch and overload sheds only the
// lowest-priority work.
//
// Determinism contract: admission order and shed decisions are pure
// functions of the submission sequence — no wall clock, no randomness, no
// thread-count dependence — so a fleet run admits and sheds identically for
// any SURFOS_THREADS. (Each site's broker owns its own queue; the queue
// itself is not thread-safe.)
//
// Scheduling discipline, per pump():
//   1. Every app's token budget resets to `tokens_per_app` (the per-epoch
//      admission budget).
//   2. Classes drain in deficit-round-robin: each round credits a class by
//      its weight (1 + priority/10: background 1 ... critical 4), then
//      admits that many entries FIFO. Higher classes go first within a
//      round, lower classes still make progress every round — weighted
//      fairness without starvation.
//   3. An entry whose app is out of tokens is deferred in place (keeps its
//      FIFO position for the next pump) rather than shed.
//
// Shedding, on submit() to a full queue: the newest entry of the lowest
// present priority class is dropped to make room — unless the incoming
// demand itself is that lowest class, in which case it is refused. Either
// way only lowest-priority work is ever lost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "broker/demand.hpp"
#include "orch/task.hpp"
#include "util/env.hpp"

namespace surfos::broker {

/// One queued demand: which app wants it and how urgent it is.
struct AdmissionRequest {
  std::string app_id;
  AppDemand demand;
  orch::Priority priority = orch::kPriorityNormal;
  std::uint64_t seq = 0;  ///< Submission sequence (assigned by the queue).
};

/// Canonical priority class for an application demand — the broker's
/// default when the submitter does not override it.
orch::Priority demand_priority(const AppDemand& demand) noexcept;

struct AdmissionOptions {
  /// Bounded queue capacity (SURFOS_ADMIT_QUEUE env, >= 1).
  std::size_t capacity = util::env_size("SURFOS_ADMIT_QUEUE", 256, 1);
  /// Demands one app may admit per pump() (its token budget per epoch).
  std::size_t tokens_per_app = 4;
};

/// Cumulative admission telemetry (also mirrored to broker.admission.*
/// counters). Per-class maps are keyed by priority value.
struct AdmissionStats {
  std::size_t submitted = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t deferred = 0;  ///< Token-starved head-of-class deferrals.
  std::map<orch::Priority, std::size_t> admitted_by_class;
  std::map<orch::Priority, std::size_t> shed_by_class;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options = {});

  /// Enqueues a demand. Returns false when the demand itself was shed
  /// (queue full of same-or-higher-priority work); a true return may still
  /// have shed the newest entry of a lower class to make room.
  bool submit(AdmissionRequest request);

  /// Drains up to `max_admissions` entries through `admit` under the
  /// weighted-fair / token-budget discipline above. Returns the number
  /// admitted. `admit` must not reenter the queue.
  std::size_t pump(
      std::size_t max_admissions,
      const std::function<void(const AdmissionRequest&)>& admit);

  /// The queued-but-not-yet-admitted demands in drain order (highest class
  /// first, FIFO within a class) — what a surfosd snapshot persists so a
  /// restart re-submits exactly the in-flight work.
  std::vector<AdmissionRequest> pending() const;

  std::size_t depth() const noexcept { return depth_; }
  bool empty() const noexcept { return depth_ == 0; }
  const AdmissionOptions& options() const noexcept { return options_; }
  const AdmissionStats& stats() const noexcept { return stats_; }

 private:
  /// DRR weight of a priority class (>= 1).
  static std::size_t weight(orch::Priority priority) noexcept;
  /// Construction-time capacity, unless a daemon config snapshot overrides
  /// SURFOS_ADMIT_QUEUE (hot-reload between epochs; see core/config.hpp).
  std::size_t effective_capacity() const;

  AdmissionOptions options_;
  AdmissionStats stats_;
  /// Per-class FIFO queues, highest priority first.
  std::map<orch::Priority, std::deque<AdmissionRequest>,
           std::greater<orch::Priority>>
      classes_;
  std::size_t depth_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace surfos::broker
