#include "broker/admission.hpp"

#include <algorithm>

#include "core/config.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace surfos::broker {

namespace {
constexpr const char* kLog = "admission";
}

orch::Priority demand_priority(const AppDemand& demand) noexcept {
  switch (demand.app_class) {
    case AppClass::kSensitiveData:
      return orch::kPriorityCritical;
    case AppClass::kVrGaming:
    case AppClass::kVideoConference:
      return orch::kPriorityInteractive;
    case AppClass::kVideoStreaming:
    case AppClass::kFileTransfer:
    case AppClass::kSmartHome:
      return orch::kPriorityNormal;
    case AppClass::kWirelessCharging:
      return orch::kPriorityBackground;
  }
  return orch::kPriorityNormal;
}

AdmissionQueue::AdmissionQueue(AdmissionOptions options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.tokens_per_app == 0) options_.tokens_per_app = 1;
}

std::size_t AdmissionQueue::weight(orch::Priority priority) noexcept {
  // Background 1, normal 2, interactive 3, critical 4 (and still >= 1 for
  // any out-of-tier priority value, e.g. escalation bumps).
  const orch::Priority tier = std::max<orch::Priority>(priority, 0) / 10;
  return static_cast<std::size_t>(tier) + 1;
}

std::size_t AdmissionQueue::effective_capacity() const {
  // Hot-reload hook: under a daemon (config snapshot installed) a set-knob
  // SURFOS_ADMIT_QUEUE override wins over the construction-time capacity on
  // the very next submit; in library mode the constructed capacity is final.
  if (const auto snapshot = core::config_snapshot()) {
    if (const auto value = snapshot->lookup("SURFOS_ADMIT_QUEUE")) {
      return std::max<std::size_t>(*value, 1);
    }
  }
  return options_.capacity;
}

std::vector<AdmissionRequest> AdmissionQueue::pending() const {
  std::vector<AdmissionRequest> out;
  out.reserve(depth_);
  for (const auto& [priority, queue] : classes_) {
    out.insert(out.end(), queue.begin(), queue.end());
  }
  return out;
}

bool AdmissionQueue::submit(AdmissionRequest request) {
  ++stats_.submitted;
  SURFOS_COUNT("broker.admission.submitted");
  request.seq = next_seq_++;
  if (depth_ >= effective_capacity()) {
    // Overload: only the lowest-priority work may be lost. The lowest
    // present class gives up its *newest* entry (oldest entries are closest
    // to admission and have waited longest); an incoming demand at or below
    // that class is refused outright.
    auto lowest = classes_.rbegin();
    while (lowest != classes_.rend() && lowest->second.empty()) ++lowest;
    if (lowest == classes_.rend() || request.priority <= lowest->first) {
      ++stats_.shed;
      ++stats_.shed_by_class[request.priority];
      SURFOS_COUNT("broker.admission.shed");
      SURFOS_WARN(kLog) << "queue full: shed incoming demand for app "
                        << request.app_id << " (priority "
                        << request.priority << ")";
      return false;
    }
    const AdmissionRequest& victim = lowest->second.back();
    ++stats_.shed;
    ++stats_.shed_by_class[victim.priority];
    SURFOS_COUNT("broker.admission.shed");
    SURFOS_WARN(kLog) << "queue full: shed queued demand for app "
                      << victim.app_id << " (priority " << victim.priority
                      << ") for incoming priority " << request.priority;
    lowest->second.pop_back();
    --depth_;
  }
  classes_[request.priority].push_back(std::move(request));
  ++depth_;
  SURFOS_GAUGE_SET("broker.admission.depth", static_cast<double>(depth_));
  return true;
}

std::size_t AdmissionQueue::pump(
    std::size_t max_admissions,
    const std::function<void(const AdmissionRequest&)>& admit) {
  // Per-epoch token budgets: reset for every app at pump start.
  std::map<std::string, std::size_t> tokens;
  std::map<orch::Priority, std::size_t> credit;
  std::size_t admitted = 0;

  bool progressed = true;
  while (progressed && admitted < max_admissions && depth_ > 0) {
    progressed = false;
    for (auto& [priority, queue] : classes_) {
      if (queue.empty()) continue;
      credit[priority] += weight(priority);
      std::size_t& budget = credit[priority];
      // Admit up to `budget` token-holding entries FIFO; token-starved
      // entries are deferred in place (they keep their queue position).
      std::deque<AdmissionRequest> deferred;
      while (budget > 0 && !queue.empty() && admitted < max_admissions) {
        AdmissionRequest& head = queue.front();
        auto [it, inserted] =
            tokens.try_emplace(head.app_id, options_.tokens_per_app);
        if (it->second == 0) {
          ++stats_.deferred;
          SURFOS_COUNT("broker.admission.deferred");
          deferred.push_back(std::move(head));
          queue.pop_front();
          continue;
        }
        --it->second;
        --budget;
        ++admitted;
        ++stats_.admitted;
        ++stats_.admitted_by_class[priority];
        SURFOS_COUNT("broker.admission.admitted");
        const AdmissionRequest request = std::move(head);
        queue.pop_front();
        --depth_;
        progressed = true;
        admit(request);
      }
      // Put deferred entries back at the front, original order preserved.
      for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
        queue.push_front(std::move(*it));
      }
      if (admitted >= max_admissions) break;
    }
  }
  SURFOS_GAUGE_SET("broker.admission.depth", static_cast<double>(depth_));
  return admitted;
}

}  // namespace surfos::broker
