// Datasheet-to-driver generation (paper 3.4: "LLMs can assist by parsing and
// summarizing long text, such as datasheets ... to generate surface hardware
// specifications ... [and] further synthesize the driver code").
//
// The substitute here is a tolerant key:value datasheet parser that emits a
// HardwareSpec + panel geometry blueprint, and a factory that instantiates a
// ready-to-register driver from it. Unknown keys are collected as warnings
// rather than errors — real datasheets are messy.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geom/frame.hpp"
#include "hal/clock.hpp"
#include "hal/driver.hpp"
#include "surface/panel.hpp"

namespace surfos::broker {

/// Everything needed to build and drive one surface.
struct DriverBlueprint {
  std::string model;
  em::Band band = em::Band::k28GHz;
  surface::OperationMode op_mode = surface::OperationMode::kReflective;
  surface::Reconfigurability reconfigurability =
      surface::Reconfigurability::kProgrammable;
  surface::ControlGranularity granularity =
      surface::ControlGranularity::kElement;
  surface::ElementDesign element;
  std::size_t rows = 16;
  std::size_t cols = 16;
  hal::Micros control_delay_us = 500;
  std::size_t config_slots = 4;

  hal::HardwareSpec to_spec() const;
};

struct SpecGenResult {
  std::optional<DriverBlueprint> blueprint;  ///< Empty on fatal parse failure.
  std::vector<std::string> warnings;         ///< Ignored/unparsable lines.
};

/// Parses "key: value" datasheet text. Recognized keys (case-insensitive):
/// model, frequency (e.g. "28 GHz"), mode (reflective/transmissive/
/// transflective), reconfigurable (yes/no/column/row), elements ("16x32"),
/// spacing ("5.4 mm" or "half-wavelength"), phase_bits, insertion_loss
/// ("2 dB"), control_delay ("500 us" / "2 ms"), slots.
SpecGenResult parse_datasheet(const std::string& text);

/// Builds the panel described by a blueprint at a deployment pose.
surface::SurfacePanel build_panel(const DriverBlueprint& blueprint,
                                  const geom::Frame& pose);

/// Synthesizes a driver for a panel built from the blueprint. The panel must
/// have been produced by build_panel (same geometry) and outlive the driver.
std::unique_ptr<hal::SurfaceDriver> synthesize_driver(
    const DriverBlueprint& blueprint, const surface::SurfacePanel* panel,
    std::string device_id, const hal::SimClock* clock);

}  // namespace surfos::broker
