// Service broker: the daemon that serves surface-oblivious applications
// (paper 3.3). Applications declare demands (or the intent engine infers
// them from user text); the broker translates demands to service goals,
// invokes the orchestrator, tracks each app's tasks, idles them when the
// app stops, and monitors satisfaction so unsatisfied apps can be escalated.
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "broker/admission.hpp"
#include "broker/demand.hpp"
#include "broker/intent.hpp"
#include "broker/monitor.hpp"
#include "broker/translate.hpp"
#include "core/status.hpp"
#include "orch/orchestrator.hpp"
#include "telemetry/trace.hpp"

namespace surfos::broker {

struct AppSession {
  std::string app_id;
  AppDemand demand;
  std::vector<orch::TaskId> tasks;
  bool running = false;
  /// The intent's deterministic trace id (every task the demand fanned out
  /// into carries it; join key into the flight recorder).
  telemetry::TraceId trace_id = 0;
};

struct AppStatus {
  bool known = false;
  bool running = false;
  bool satisfied = false;   ///< Every task's goal currently met.
  std::size_t tasks_total = 0;
  std::size_t tasks_met = 0;
};

class ServiceBroker {
 public:
  /// `orchestrator` must outlive the broker. `default_region` is the region
  /// grid used for region-scoped goals (sensing/security) when an app names
  /// a room the broker has no map for.
  ServiceBroker(orch::Orchestrator* orchestrator,
                geom::SampleGrid default_region,
                TranslationOptions translation = {});

  /// Registers a named region so utterances like "meeting room" resolve to
  /// real probe grids.
  void add_region(std::string region_id, geom::SampleGrid region);

  // --- Result-based service surface (the PR 8 API redesign) ---------------
  // Failures come back as surfos::Result errors with wire-stable ErrorCodes
  // (core/status.hpp) instead of exceptions, so the same contract holds
  // in-process and across the surfosd socket. The old throwing entry points
  // survive one release as [[deprecated]] shims below.

  /// Starts an application session synchronously: translates the demand and
  /// creates the orchestrator tasks. Returns the intent's deterministic
  /// trace id, or kAlreadyExists — naming the colliding session's task ids
  /// in the message — if the app id is already running.
  Result<telemetry::TraceId> start_app(std::string app_id, AppDemand demand);

  /// Queues a demand for admission instead of starting it synchronously
  /// (the fleet-scale path; see broker/admission.hpp for the fairness and
  /// shedding discipline). `priority` defaults to demand_priority(demand).
  /// kAdmissionShed when the demand itself was refused by the full queue.
  Result<void> submit_demand(
      std::string app_id, AppDemand demand,
      std::optional<orch::Priority> priority = std::nullopt);

  /// Drains up to `max_admissions` queued demands into running sessions
  /// under the admission queue's weighted-fair / token-budget discipline.
  /// Demands whose app id is already running are dropped with a
  /// broker.admission.duplicates count (never an error mid-drain). Returns
  /// the number of sessions started.
  std::size_t pump_admissions(
      std::size_t max_admissions = std::numeric_limits<std::size_t>::max());

  /// Stops an app: its tasks go idle and release resources. kNotFound on an
  /// unknown app id (same contract as resume_app).
  Result<void> stop_app(const std::string& app_id);

  /// Resumes a previously stopped app. kNotFound on an unknown app id.
  Result<void> resume_app(const std::string& app_id);

  /// Re-creates a session from a surfosd snapshot under its *original*
  /// deterministic trace id (the snapshot stored it), so a restarted daemon
  /// mints byte-identical ids for the same intents. Stopped sessions are
  /// restored idle. kAlreadyExists if the app id is already running.
  Result<telemetry::TraceId> restore_session(std::string app_id,
                                             AppDemand demand, bool running,
                                             telemetry::TraceId trace_id);

  /// The per-intent trace sequence counter — snapshotted by surfosd so a
  /// restart continues the id stream instead of reusing ids.
  std::uint64_t trace_seq() const noexcept { return trace_seq_; }
  void set_trace_seq(std::uint64_t seq) noexcept { trace_seq_ = seq; }

  AppStatus status(const std::string& app_id) const;

  /// Escalates every running-but-unsatisfied app by re-admitting its link
  /// goals at a higher priority. Returns the number escalated. (The broker's
  /// monitoring loop; call after orchestrator steps.)
  std::size_t escalate_unsatisfied();

  /// Full pipeline for user text: interpret -> start one app per detected
  /// activity. Returns the intent result (rendered calls included).
  IntentResult handle_utterance(const std::string& text);

  /// Acts on traffic-monitor output (paper 3.3: "monitor wireless traffic to
  /// understand user demands"): starts an app session for every suggested
  /// endpoint whose inferred application is not already being served, and
  /// stops previously auto-started sessions whose traffic disappeared.
  /// Returns the number of sessions started.
  std::size_t apply_traffic_suggestions(
      const std::vector<DemandSuggestion>& suggestions);

  const std::map<std::string, AppSession>& sessions() const noexcept {
    return sessions_;
  }
  orch::Orchestrator& orchestrator() noexcept { return *orchestrator_; }
  AdmissionQueue& admission() noexcept { return admission_; }
  const AdmissionQueue& admission() const noexcept { return admission_; }

 private:
  const geom::SampleGrid& region_for(const std::string& region_id) const;

  /// Shared body of start_app/restore_session: translate + dispatch under an
  /// explicit trace id.
  Result<telemetry::TraceId> start_session(std::string app_id,
                                           AppDemand demand,
                                           telemetry::TraceId trace_id);

  orch::Orchestrator* orchestrator_;
  geom::SampleGrid default_region_;
  TranslationOptions translation_;
  IntentEngine intent_;
  std::map<std::string, geom::SampleGrid> regions_;
  std::map<std::string, AppSession> sessions_;
  AdmissionQueue admission_;
  std::size_t utterance_counter_ = 0;
  /// Monotone per-intent sequence — the `seq` of each admitted intent's
  /// deterministic trace id (see telemetry/trace.hpp).
  std::uint64_t trace_seq_ = 0;
};

}  // namespace surfos::broker
