#include "broker/broker.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace surfos::broker {

namespace {
constexpr const char* kLog = "broker";
}

ServiceBroker::ServiceBroker(orch::Orchestrator* orchestrator,
                             geom::SampleGrid default_region,
                             TranslationOptions translation)
    : orchestrator_(orchestrator),
      default_region_(default_region),
      translation_(translation),
      intent_(IntentContext{}) {
  if (orchestrator_ == nullptr) {
    throw std::invalid_argument("ServiceBroker: null orchestrator");
  }
}

void ServiceBroker::add_region(std::string region_id, geom::SampleGrid region) {
  regions_.insert_or_assign(std::move(region_id), region);
}

const geom::SampleGrid& ServiceBroker::region_for(
    const std::string& region_id) const {
  const auto it = regions_.find(region_id);
  return it == regions_.end() ? default_region_ : it->second;
}

Result<telemetry::TraceId> ServiceBroker::start_session(
    std::string app_id, AppDemand demand, telemetry::TraceId trace_id) {
  if (const auto it = sessions_.find(app_id);
      it != sessions_.end() && it->second.running) {
    // Name the colliding tasks: the caller learns exactly which running
    // work holds the id, not just that something does.
    std::string tasks;
    for (const orch::TaskId id : it->second.tasks) {
      if (!tasks.empty()) tasks += ", ";
      tasks += std::to_string(id);
    }
    return make_error(ErrorCode::kAlreadyExists,
                      "ServiceBroker: app already running: " + app_id +
                          " (holds task(s) " +
                          (tasks.empty() ? "none" : tasks) + ")");
  }
  AppSession session;
  session.app_id = app_id;
  session.demand = demand;
  session.running = true;

  // One causal trace per admitted intent: every task this demand fans out
  // into — and later every span those tasks cause down through the
  // optimizer and HAL — carries this deterministic id.
  const telemetry::TraceContext intent_trace{trace_id, 0};
  telemetry::TraceScope trace_scope(intent_trace);
  SURFOS_TRACE_SPAN("broker.translate");

  const auto& budget = orchestrator_->context().budget;
  const auto requests =
      translate(demand, budget, region_for(demand.region_id), translation_);
  for (const auto& request : requests) {
    struct Dispatch {
      orch::Orchestrator& orch;
      orch::Priority priority;
      orch::TaskId operator()(const orch::LinkGoal& g) const {
        return orch.enhance_link(g, priority);
      }
      orch::TaskId operator()(const orch::CoverageGoal& g) const {
        return orch.optimize_coverage(g, priority);
      }
      orch::TaskId operator()(const orch::SensingGoal& g) const {
        return orch.enable_sensing(g, priority);
      }
      orch::TaskId operator()(const orch::PowerGoal& g) const {
        return orch.init_powering(g, priority);
      }
      orch::TaskId operator()(const orch::SecurityGoal& g) const {
        return orch.protect(g, priority);
      }
    };
    session.tasks.push_back(
        std::visit(Dispatch{*orchestrator_, request.priority}, request.goal));
  }
  session.trace_id = intent_trace.trace_id;
  SURFOS_INFO(kLog) << "app " << app_id << " started with "
                    << session.tasks.size() << " task(s)";
  SURFOS_COUNT("broker.apps.started");
  SURFOS_COUNT_N("broker.demand.translations", requests.size());
  sessions_.insert_or_assign(std::move(app_id), std::move(session));
  return intent_trace.trace_id;
}

Result<telemetry::TraceId> ServiceBroker::start_app(std::string app_id,
                                                    AppDemand demand) {
  return start_session(
      std::move(app_id), std::move(demand),
      telemetry::make_trace_id(telemetry::trace_domain("broker.intent"),
                               ++trace_seq_));
}

Result<telemetry::TraceId> ServiceBroker::restore_session(
    std::string app_id, AppDemand demand, bool running,
    telemetry::TraceId trace_id) {
  auto started = start_session(app_id, std::move(demand), trace_id);
  if (!started.ok()) return started;
  if (!running) {
    // Restore-then-idle reuses the stop path so task bookkeeping matches a
    // session that was stopped the normal way before the snapshot.
    if (auto stopped = stop_app(app_id); !stopped.ok()) {
      return stopped.error();
    }
  }
  return started;
}

Result<void> ServiceBroker::submit_demand(
    std::string app_id, AppDemand demand,
    std::optional<orch::Priority> priority) {
  AdmissionRequest request;
  request.priority = priority.value_or(demand_priority(demand));
  request.app_id = std::move(app_id);
  request.demand = std::move(demand);
  const std::string id = request.app_id;
  if (!admission_.submit(std::move(request))) {
    return make_error(ErrorCode::kAdmissionShed,
                      "ServiceBroker: demand shed at admission: " + id);
  }
  return ok_result();
}

std::size_t ServiceBroker::pump_admissions(std::size_t max_admissions) {
  std::size_t started = 0;
  admission_.pump(max_admissions, [&](const AdmissionRequest& request) {
    if (const auto it = sessions_.find(request.app_id);
        it != sessions_.end() && it->second.running) {
      // A duplicate mid-drain is demand that resolved itself while queued;
      // dropping it must not abort the rest of the epoch's admissions.
      SURFOS_COUNT("broker.admission.duplicates");
      SURFOS_WARN(kLog) << "dropping queued demand for already-running app "
                        << request.app_id;
      return;
    }
    if (const auto result = start_app(request.app_id, request.demand);
        !result.ok()) {
      // Admission raced a concurrent start; shedding one queued demand must
      // not abort the rest of the epoch's drain.
      SURFOS_COUNT("broker.admission.start_failures");
      SURFOS_WARN(kLog) << "queued demand for " << request.app_id
                        << " failed to start: " << result.error().message;
      return;
    }
    ++started;
  });
  return started;
}

Result<void> ServiceBroker::stop_app(const std::string& app_id) {
  const auto it = sessions_.find(app_id);
  if (it == sessions_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "ServiceBroker: unknown app: " + app_id);
  }
  for (const orch::TaskId id : it->second.tasks) {
    if (const auto* task = orchestrator_->find_task(id); task && task->active()) {
      (void)orchestrator_->set_task_idle(id, true);
    }
  }
  it->second.running = false;
  SURFOS_COUNT("broker.apps.stopped");
  SURFOS_INFO(kLog) << "app " << app_id << " stopped; tasks idled";
  return ok_result();
}

Result<void> ServiceBroker::resume_app(const std::string& app_id) {
  const auto it = sessions_.find(app_id);
  if (it == sessions_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "ServiceBroker: unknown app: " + app_id);
  }
  for (const orch::TaskId id : it->second.tasks) {
    if (const auto* task = orchestrator_->find_task(id);
        task && task->state == orch::TaskState::kIdle) {
      (void)orchestrator_->set_task_idle(id, false);
    }
  }
  it->second.running = true;
  return ok_result();
}

AppStatus ServiceBroker::status(const std::string& app_id) const {
  AppStatus status;
  const auto it = sessions_.find(app_id);
  if (it == sessions_.end()) return status;
  status.known = true;
  status.running = it->second.running;
  status.tasks_total = it->second.tasks.size();
  for (const orch::TaskId id : it->second.tasks) {
    const auto* task = orchestrator_->find_task(id);
    if (task != nullptr && task->goal_met) ++status.tasks_met;
  }
  status.satisfied =
      status.tasks_total > 0 && status.tasks_met == status.tasks_total;
  return status;
}

std::size_t ServiceBroker::escalate_unsatisfied() {
  std::size_t escalated = 0;
  for (auto& [app_id, session] : sessions_) {
    if (!session.running) continue;
    for (orch::TaskId& id : session.tasks) {
      const auto* task = orchestrator_->find_task(id);
      if (task == nullptr || !task->active() || task->goal_met) continue;
      if (task->priority >= orch::kPriorityCritical) continue;
      // Re-admit at the next priority tier; the old task is cancelled. The
      // replacement keeps the original intent's trace id so the escalation
      // shows up as one causal chain, not a fresh trace.
      const orch::ServiceGoal goal = task->goal;
      const orch::Priority bumped = task->priority + 10;
      const telemetry::TraceScope trace_scope({task->trace.trace_id, 0});
      SURFOS_TRACE_INSTANT("broker.escalate");
      orchestrator_->cancel_task(id);
      struct Dispatch {
        orch::Orchestrator& orch;
        orch::Priority priority;
        orch::TaskId operator()(const orch::LinkGoal& g) const {
          return orch.enhance_link(g, priority);
        }
        orch::TaskId operator()(const orch::CoverageGoal& g) const {
          return orch.optimize_coverage(g, priority);
        }
        orch::TaskId operator()(const orch::SensingGoal& g) const {
          return orch.enable_sensing(g, priority);
        }
        orch::TaskId operator()(const orch::PowerGoal& g) const {
          return orch.init_powering(g, priority);
        }
        orch::TaskId operator()(const orch::SecurityGoal& g) const {
          return orch.protect(g, priority);
        }
      };
      id = std::visit(Dispatch{*orchestrator_, bumped}, goal);
      ++escalated;
      SURFOS_COUNT("broker.escalations");
      SURFOS_INFO(kLog) << "escalated a task of app " << app_id
                        << " to priority " << bumped;
    }
  }
  return escalated;
}

std::size_t ServiceBroker::apply_traffic_suggestions(
    const std::vector<DemandSuggestion>& suggestions) {
  std::size_t started = 0;
  // Stop auto-started sessions whose endpoint no longer shows traffic of
  // that class.
  for (auto& [app_id, session] : sessions_) {
    if (!session.running || !util::starts_with(app_id, "auto-")) continue;
    const bool still_suggested = std::any_of(
        suggestions.begin(), suggestions.end(),
        [&](const DemandSuggestion& s) {
          return s.endpoint_id == session.demand.endpoint_id &&
                 s.classification.app_class == session.demand.app_class;
        });
    if (!still_suggested) {
      (void)stop_app(app_id);
      SURFOS_INFO(kLog) << "auto session " << app_id
                        << " stopped: traffic gone";
    }
  }
  // Start sessions for newly observed application traffic.
  for (const DemandSuggestion& suggestion : suggestions) {
    if (suggestion.classification.confidence < 0.5) continue;
    const std::string app_id =
        util::format("auto-%s-%s", suggestion.endpoint_id.c_str(),
                     to_string(suggestion.classification.app_class));
    const auto it = sessions_.find(app_id);
    if (it != sessions_.end()) {
      if (!it->second.running) (void)resume_app(app_id);
      continue;
    }
    AppDemand demand = demand_profile(suggestion.classification.app_class,
                                      suggestion.endpoint_id);
    // Refine the profile with the observed rate (plus headroom) — the
    // monitor knows what the app actually consumes.
    if (demand.throughput_mbps) {
      demand.throughput_mbps =
          std::max(*demand.throughput_mbps,
                   suggestion.features.total_mbps() * 1.2);
    }
    if (!start_app(app_id, std::move(demand)).ok()) continue;
    ++started;
    SURFOS_COUNT("broker.traffic.auto_sessions");
  }
  return started;
}

IntentResult ServiceBroker::handle_utterance(const std::string& text) {
  SURFOS_TRACE_SPAN("broker.utterance");
  const IntentResult result = intent_.interpret(text);
  SURFOS_COUNT("broker.utterances");
  if (!result.understood) return result;
  SURFOS_COUNT("broker.utterances_understood");
  for (const AppClass app_class : result.activities) {
    AppDemand demand = demand_profile(app_class, result.device, result.room);
    const std::string app_id =
        util::format("%s-%zu", to_string(app_class), ++utterance_counter_);
    (void)start_app(app_id, std::move(demand));
  }
  return result;
}

}  // namespace surfos::broker
