// Demand translation: application-level targets -> signal-level service
// goals (paper 3.3: "It is challenging to translate user demands or
// application performance targets to low-level service targets for surfaces
// ... involves multiple non-linear mappings across network stack layers").
//
// The non-linear chain implemented here:
//   app throughput -> MAC goodput (protocol efficiency, retransmissions)
//               -> PHY rate       (time-share of the TDM frame)
//               -> required SNR   (inverse Shannon with an implementation gap)
// and latency -> scheduling priority.
#pragma once

#include <vector>

#include "broker/demand.hpp"
#include "em/propagation.hpp"
#include "geom/grid.hpp"
#include "orch/task.hpp"

namespace surfos::broker {

struct TranslationOptions {
  double mac_efficiency = 0.7;     ///< App goodput / PHY rate.
  double shannon_gap_db = 3.0;     ///< Implementation gap to capacity.
  double snr_margin_db = 3.0;      ///< Fading / mobility headroom.
  /// Expected TDM share of the link: a multi-client channel gives each app a
  /// fraction of airtime, so the PHY must run proportionally faster.
  double assumed_time_share = 0.2;
};

/// Required SNR (dB) for an application throughput over a bandwidth.
double required_snr_db(double throughput_mbps, const em::LinkBudget& budget,
                       const TranslationOptions& options = {});

/// Priority from the latency requirement (tighter latency -> higher).
orch::Priority priority_for_latency(double max_latency_ms);

/// The service calls a demand expands into, with priorities.
struct ServiceRequest {
  orch::ServiceGoal goal;
  orch::Priority priority = orch::kPriorityNormal;
};

/// Translate one application demand into service requests. Region-based
/// goals (sensing, security) use `region`; link goals use the demand's
/// endpoint id.
std::vector<ServiceRequest> translate(const AppDemand& demand,
                                      const em::LinkBudget& budget,
                                      const geom::SampleGrid& region,
                                      const TranslationOptions& options = {});

}  // namespace surfos::broker
