#include "broker/intent.hpp"

#include <algorithm>

#include "broker/translate.hpp"
#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"

namespace surfos::broker {

namespace {

using util::contains;

struct ActivityRule {
  AppClass app_class;
  std::vector<std::string> keywords;  ///< Any keyword triggers the activity.
};

const std::vector<ActivityRule>& rules() {
  static const std::vector<ActivityRule> kRules = {
      {AppClass::kVrGaming, {"vr", "virtual reality", "ar game", "gaming"}},
      // "meeting" alone is ambiguous with the room name ("meeting room"),
      // so the conference activity requires a call-like phrasing.
      {AppClass::kVideoConference,
       {"online meeting", "a meeting", "video call", "conference call",
        "zoom", "teams call"}},
      {AppClass::kVideoStreaming,
       {"stream", "movie", "watch a video", "netflix", "youtube"}},
      {AppClass::kWirelessCharging,
       {"charge", "charging", "power my", "wireless power", "battery"}},
      {AppClass::kSmartHome,
       {"track", "tracking", "motion", "sensing", "monitor the room",
        "fall detection", "presence"}},
      {AppClass::kSensitiveData,
       {"secure", "security", "private", "privacy", "sensitive",
        "confidential"}},
      {AppClass::kFileTransfer,
       {"download", "upload", "file transfer", "backup", "sync"}},
  };
  return kRules;
}

struct DeviceRule {
  std::string device_id;
  std::vector<std::string> keywords;
};

const std::vector<DeviceRule>& device_rules() {
  static const std::vector<DeviceRule> kDevices = {
      {"VR_headset", {"headset", "vr", "quest", "vision pro"}},
      {"phone", {"phone", "mobile", "smartphone"}},
      {"laptop", {"laptop", "notebook", "computer", "macbook"}},
      {"tv", {"tv", "television", "screen"}},
      {"tablet", {"tablet", "ipad"}},
  };
  return kDevices;
}

std::string detect_room(const std::string& lowered,
                        const std::string& fallback) {
  static const std::vector<std::pair<std::string, std::string>> kRooms = {
      {"meeting room", "meeting_room"}, {"living room", "living_room"},
      {"bedroom", "bedroom"},           {"kitchen", "kitchen"},
      {"office", "office"},             {"this room", "this_room"},
  };
  for (const auto& [phrase, id] : kRooms) {
    if (contains(lowered, phrase)) return id;
  }
  return fallback;
}

/// Extracts "... N hour(s)/minute(s) ..." into seconds, if present.
bool extract_duration(const std::string& lowered, double& seconds_out) {
  const auto words = util::split_words(lowered);
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    double value = 0.0;
    if (!util::parse_double(words[i], value)) continue;
    const std::string_view unit = words[i + 1];
    if (util::starts_with(unit, "hour")) {
      seconds_out = value * 3600.0;
      return true;
    }
    if (util::starts_with(unit, "minute") || util::starts_with(unit, "min")) {
      seconds_out = value * 60.0;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string ServiceCall::render() const {
  std::string out = function + "(";
  bool first = true;
  for (const auto& arg : positional) {
    if (!first) out += ", ";
    out += "\"" + arg + "\"";
    first = false;
  }
  for (const auto& [key, value] : named) {
    if (!first) out += ", ";
    out += key + "=" + util::format("%.1f", value);
    first = false;
  }
  out += ")";
  return out;
}

IntentEngine::IntentEngine(IntentContext context)
    : context_(std::move(context)) {}

IntentResult IntentEngine::interpret(const std::string& utterance) const {
  SURFOS_COUNT("broker.intents.interpreted");
  IntentResult result;
  const std::string lowered = util::to_lower(utterance);

  // Activity detection, ordered by first keyword occurrence in the text so
  // multi-intent sentences ("online meeting while charging my phone") emit
  // calls in the user's order.
  std::vector<std::pair<std::size_t, AppClass>> found;
  for (const auto& rule : rules()) {
    std::size_t best = std::string::npos;
    for (const auto& keyword : rule.keywords) {
      const auto at = lowered.find(keyword);
      if (at != std::string::npos) best = std::min(best, at);
    }
    if (best != std::string::npos) found.emplace_back(best, rule.app_class);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Entity extraction: collect every mentioned device so multi-intent
  // sentences can bind each activity to its own device ("online meeting
  // while charging my phone" -> meeting on the laptop, power to the phone).
  std::vector<std::string> mentioned;
  for (const auto& rule : device_rules()) {
    for (const auto& keyword : rule.keywords) {
      if (contains(lowered, keyword)) {
        mentioned.push_back(rule.device_id);
        break;
      }
    }
  }
  result.device = mentioned.empty() ? context_.default_device : mentioned[0];
  const auto device_for = [&](AppClass app_class) -> std::string {
    const auto prefer = [&](std::initializer_list<const char*> order)
        -> std::string {
      for (const char* want : order) {
        for (const auto& m : mentioned) {
          if (m == want) return m;
        }
      }
      // None of the activity's preferred devices was mentioned: fall back to
      // the session default rather than an unrelated mention (a meeting does
      // not move onto the phone just because charging it was requested).
      return context_.default_device;
    };
    switch (app_class) {
      case AppClass::kVrGaming:
        return "VR_headset";
      case AppClass::kWirelessCharging:
        return prefer({"phone", "tablet", "laptop"});
      case AppClass::kVideoConference:
      case AppClass::kVideoStreaming:
      case AppClass::kFileTransfer:
      case AppClass::kSensitiveData:
        return prefer({"laptop", "tv", "tablet"});
      case AppClass::kSmartHome:
        return prefer({"laptop", "phone"});
    }
    return context_.default_device;
  };
  result.room = detect_room(lowered, context_.default_room);
  double duration_s = 3600.0;
  extract_duration(lowered, duration_s);

  em::LinkBudget budget;
  budget.bandwidth_hz = context_.bandwidth_hz;

  for (const auto& [pos, app_class] : found) {
    result.activities.push_back(app_class);
    const std::string device = device_for(app_class);
    AppDemand demand = demand_profile(app_class, device, result.room);
    if (demand.duration_s) demand.duration_s = duration_s;

    switch (app_class) {
      case AppClass::kVrGaming: {
        ServiceCall link{"enhance_link", {device}, {}};
        link.named.emplace_back(
            "snr", required_snr_db(*demand.throughput_mbps, budget));
        link.named.emplace_back("latency", *demand.max_latency_ms);
        result.calls.push_back(std::move(link));
        // VR play spaces also get room tracking and headroom coverage, the
        // combination the paper's Fig 6 example produces.
        ServiceCall sensing{"enable_sensing", {result.room, "tracking"}, {}};
        sensing.named.emplace_back("duration", duration_s);
        result.calls.push_back(std::move(sensing));
        ServiceCall coverage{"optimize_coverage", {result.room}, {}};
        coverage.named.emplace_back("median_snr", 25.0);
        result.calls.push_back(std::move(coverage));
        break;
      }
      case AppClass::kVideoConference:
      case AppClass::kVideoStreaming:
      case AppClass::kFileTransfer: {
        ServiceCall link{"enhance_link", {device}, {}};
        link.named.emplace_back(
            "snr", required_snr_db(*demand.throughput_mbps, budget));
        link.named.emplace_back("latency", *demand.max_latency_ms);
        result.calls.push_back(std::move(link));
        break;
      }
      case AppClass::kWirelessCharging: {
        ServiceCall power{"init_powering", {device}, {}};
        power.named.emplace_back("duration", duration_s);
        result.calls.push_back(std::move(power));
        break;
      }
      case AppClass::kSmartHome: {
        ServiceCall sensing{"enable_sensing", {result.room, "tracking"}, {}};
        sensing.named.emplace_back("duration", duration_s);
        result.calls.push_back(std::move(sensing));
        break;
      }
      case AppClass::kSensitiveData: {
        ServiceCall protect{"protect", {result.room}, {}};
        protect.named.emplace_back("max_leak", -75.0);
        result.calls.push_back(std::move(protect));
        break;
      }
    }
  }

  result.understood = !result.calls.empty();
  return result;
}

}  // namespace surfos::broker
