#include "broker/demand.hpp"

namespace surfos::broker {

AppDemand demand_profile(AppClass app_class, std::string endpoint_id,
                         std::string region_id) {
  AppDemand demand;
  demand.app_class = app_class;
  demand.endpoint_id = std::move(endpoint_id);
  demand.region_id = std::move(region_id);
  switch (app_class) {
    case AppClass::kVrGaming:
      demand.throughput_mbps = 400.0;
      demand.max_latency_ms = 10.0;
      break;
    case AppClass::kVideoStreaming:
      demand.throughput_mbps = 50.0;
      demand.max_latency_ms = 200.0;
      break;
    case AppClass::kVideoConference:
      demand.throughput_mbps = 20.0;
      demand.max_latency_ms = 50.0;
      break;
    case AppClass::kFileTransfer:
      demand.throughput_mbps = 100.0;
      demand.max_latency_ms = 1000.0;
      break;
    case AppClass::kSmartHome:
      demand.needs_sensing = true;
      demand.duration_s = 3600.0;
      break;
    case AppClass::kSensitiveData:
      demand.throughput_mbps = 10.0;
      demand.max_latency_ms = 100.0;
      demand.needs_security = true;
      break;
    case AppClass::kWirelessCharging:
      demand.needs_power = true;
      demand.duration_s = 3600.0;
      break;
  }
  return demand;
}

}  // namespace surfos::broker
