#include "broker/monitor.hpp"

#include <algorithm>
#include <cmath>

namespace surfos::broker {

FlowFeatures extract_features(const std::vector<PacketRecord>& records,
                              hal::Micros window_start,
                              hal::Micros window_end) {
  FlowFeatures features;
  if (window_end <= window_start) return features;
  const double window_s =
      static_cast<double>(window_end - window_start) / 1e6;

  double down_bytes = 0.0;
  double up_bytes = 0.0;
  std::vector<double> down_gaps_ms;
  std::optional<hal::Micros> last_down;
  for (const PacketRecord& record : records) {
    if (record.timestamp < window_start || record.timestamp > window_end) {
      continue;
    }
    ++features.packets;
    if (record.direction == Direction::kDownlink) {
      down_bytes += static_cast<double>(record.bytes);
      if (last_down) {
        down_gaps_ms.push_back(
            static_cast<double>(record.timestamp - *last_down) / 1e3);
      }
      last_down = record.timestamp;
    } else {
      up_bytes += static_cast<double>(record.bytes);
    }
  }
  features.down_mbps = down_bytes * 8.0 / (window_s * 1e6);
  features.up_mbps = up_bytes * 8.0 / (window_s * 1e6);
  const double total = features.down_mbps + features.up_mbps;
  features.symmetry = total > 0.0 ? features.up_mbps / total : 0.0;
  if (!down_gaps_ms.empty()) {
    double mean = 0.0;
    for (const double g : down_gaps_ms) mean += g;
    mean /= static_cast<double>(down_gaps_ms.size());
    double var = 0.0;
    for (const double g : down_gaps_ms) var += (g - mean) * (g - mean);
    var /= static_cast<double>(down_gaps_ms.size());
    features.mean_gap_ms = mean;
    features.gap_jitter = mean > 1e-9 ? std::sqrt(var) / mean : 0.0;
  }
  return features;
}

std::optional<Classification> classify(const FlowFeatures& features) {
  // Near-idle flows carry no demand signal.
  if (features.total_mbps() < 0.05 || features.packets < 10) {
    return std::nullopt;
  }
  // VR: very high throughput, noticeable uplink (pose stream), tight cadence.
  if (features.down_mbps > 150.0 && features.symmetry > 0.05 &&
      features.mean_gap_ms < 3.0) {
    return Classification{AppClass::kVrGaming, 0.9};
  }
  // Conference: moderate symmetric media in both directions.
  if (features.symmetry > 0.3 && features.total_mbps() > 2.0 &&
      features.total_mbps() < 60.0) {
    return Classification{AppClass::kVideoConference, 0.85};
  }
  // Bulk transfer: very heavy one-way rate (line-rate, unlike paced video).
  if (features.total_mbps() > 100.0) {
    return Classification{AppClass::kFileTransfer, 0.7};
  }
  // Streaming: heavy-but-paced downlink, almost no uplink.
  if (features.down_mbps > 10.0 && features.symmetry < 0.1 &&
      features.gap_jitter < 1.0) {
    return Classification{AppClass::kVideoStreaming, 0.8};
  }
  // Bursty medium one-way rates are still most likely transfers.
  if (features.total_mbps() > 50.0) {
    return Classification{AppClass::kFileTransfer, 0.6};
  }
  // Low-rate periodic chatter: telemetry from smart-home sensors.
  if (features.total_mbps() < 1.0 && features.gap_jitter < 0.6) {
    return Classification{AppClass::kSmartHome, 0.5};
  }
  return Classification{AppClass::kFileTransfer, 0.3};
}

void TrafficMonitor::ingest(const std::string& endpoint_id,
                            PacketRecord record) {
  flows_[endpoint_id].push_back(record);
}

std::vector<DemandSuggestion> TrafficMonitor::analyze(hal::Micros now) {
  const hal::Micros start = now > window_us_ ? now - window_us_ : 0;
  std::vector<DemandSuggestion> suggestions;
  for (auto& [endpoint, records] : flows_) {
    // Prune anything older than the window.
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [&](const PacketRecord& r) {
                                   return r.timestamp < start;
                                 }),
                  records.end());
    const FlowFeatures features = extract_features(records, start, now);
    if (const auto result = classify(features)) {
      suggestions.push_back({endpoint, *result, features});
    }
  }
  return suggestions;
}

std::vector<PacketRecord> synthesize_traffic(AppClass app_class,
                                             hal::Micros start,
                                             hal::Micros duration,
                                             util::Rng& rng) {
  // Archetype signatures: (down Mbps, up Mbps, downlink cadence us, jitter).
  double down_mbps = 1.0, up_mbps = 0.05;
  double cadence_us = 10000.0, jitter = 0.3;
  switch (app_class) {
    case AppClass::kVrGaming:
      down_mbps = 350.0; up_mbps = 30.0; cadence_us = 1100.0; jitter = 0.15;
      break;
    case AppClass::kVideoStreaming:
      down_mbps = 35.0; up_mbps = 0.3; cadence_us = 4000.0; jitter = 0.2;
      break;
    case AppClass::kVideoConference:
      down_mbps = 8.0; up_mbps = 6.0; cadence_us = 10000.0; jitter = 0.3;
      break;
    case AppClass::kFileTransfer:
      down_mbps = 180.0; up_mbps = 2.0; cadence_us = 700.0; jitter = 1.6;
      break;
    case AppClass::kSmartHome:
      down_mbps = 0.1; up_mbps = 0.3; cadence_us = 50000.0; jitter = 0.2;
      break;
    case AppClass::kSensitiveData:
      down_mbps = 4.0; up_mbps = 4.0; cadence_us = 15000.0; jitter = 0.5;
      break;
    case AppClass::kWirelessCharging:
      down_mbps = 0.01; up_mbps = 0.01; cadence_us = 200000.0; jitter = 0.1;
      break;
  }

  std::vector<PacketRecord> records;
  const double window_s = static_cast<double>(duration) / 1e6;
  // Downlink packets at the archetype cadence; sizes derived from the rate.
  const double down_count = window_s * 1e6 / cadence_us;
  const double down_packet_bytes =
      down_mbps * 1e6 * window_s / 8.0 / std::max(1.0, down_count);
  double t = static_cast<double>(start);
  while (t < static_cast<double>(start + duration)) {
    records.push_back({static_cast<hal::Micros>(t), Direction::kDownlink,
                       static_cast<std::size_t>(std::max(
                           64.0, down_packet_bytes * (1.0 + 0.1 * rng.normal())))});
    t += cadence_us * std::max(0.05, 1.0 + jitter * rng.normal());
  }
  // Uplink as a steadier low-rate stream.
  const double up_cadence_us = cadence_us * 4.0;
  const double up_count = window_s * 1e6 / up_cadence_us;
  const double up_packet_bytes =
      up_mbps * 1e6 * window_s / 8.0 / std::max(1.0, up_count);
  t = static_cast<double>(start) + up_cadence_us / 2.0;
  while (t < static_cast<double>(start + duration)) {
    records.push_back({static_cast<hal::Micros>(t), Direction::kUplink,
                       static_cast<std::size_t>(std::max(
                           64.0, up_packet_bytes * (1.0 + 0.1 * rng.normal())))});
    t += up_cadence_us;
  }
  std::sort(records.begin(), records.end(),
            [](const PacketRecord& a, const PacketRecord& b) {
              return a.timestamp < b.timestamp;
            });
  return records;
}

}  // namespace surfos::broker
