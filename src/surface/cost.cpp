#include "surface/cost.hpp"

namespace surfos::surface {

double CostModel::panel_cost_usd(const SurfacePanel& panel) const noexcept {
  const auto n = static_cast<double>(panel.element_count());
  if (panel.reconfigurability() == Reconfigurability::kPassive) {
    return passive_base_usd + passive_per_element_usd * n;
  }
  double per_element = programmable_per_element_usd;
  if (panel.granularity() == ControlGranularity::kColumn ||
      panel.granularity() == ControlGranularity::kRow) {
    per_element *= (1.0 - shared_line_discount);
  }
  return programmable_base_usd + per_element * n;
}

}  // namespace surfos::surface
