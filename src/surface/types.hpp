// Fundamental metasurface taxonomy, mirroring the axes of the paper's
// Table 1: signal control mode, transmissive/reflective operation,
// reconfigurability, and control granularity.
#pragma once

#include <string_view>

namespace surfos::surface {

/// Which signal property the surface's elements manipulate (paper 3.1:
/// "abstractions corresponding to the fundamental signal properties").
enum class ControlMode {
  kPhase,
  kAmplitude,
  kPolarization,
  kFrequency,
  kDiffraction,
  kImpedance,
};

/// Whether the surface reflects incident signals, passes them through, or
/// both (mmWall's "transflective" design).
enum class OperationMode {
  kReflective,
  kTransmissive,
  kTransflective,
};

/// Passive surfaces fix their configuration at fabrication ("infinite
/// control delay, similar to ROM"); programmable surfaces accept runtime
/// updates.
enum class Reconfigurability {
  kPassive,
  kProgrammable,
};

/// The finest unit whose state can be set independently. High-frequency
/// hardware often shares one state per column (mmWall, NR-Surface) or row
/// (Scrolls) to cut control circuitry cost.
enum class ControlGranularity {
  kElement,
  kColumn,
  kRow,
  kGlobal,
};

constexpr std::string_view to_string(ControlMode m) noexcept {
  switch (m) {
    case ControlMode::kPhase: return "Phase";
    case ControlMode::kAmplitude: return "Amplitude";
    case ControlMode::kPolarization: return "Polarization";
    case ControlMode::kFrequency: return "Frequency";
    case ControlMode::kDiffraction: return "Diffraction";
    case ControlMode::kImpedance: return "Impedance";
  }
  return "?";
}

constexpr std::string_view to_string(OperationMode m) noexcept {
  switch (m) {
    case OperationMode::kReflective: return "R";
    case OperationMode::kTransmissive: return "T";
    case OperationMode::kTransflective: return "T & R";
  }
  return "?";
}

constexpr std::string_view to_string(Reconfigurability r) noexcept {
  switch (r) {
    case Reconfigurability::kPassive: return "passive";
    case Reconfigurability::kProgrammable: return "programmable";
  }
  return "?";
}

constexpr std::string_view to_string(ControlGranularity g) noexcept {
  switch (g) {
    case ControlGranularity::kElement: return "element-wise";
    case ControlGranularity::kColumn: return "column-wise";
    case ControlGranularity::kRow: return "row-wise";
    case ControlGranularity::kGlobal: return "global";
  }
  return "?";
}

}  // namespace surfos::surface
