// Surface configurations: "an array of signal property alteration values for
// each surface element" (paper 3.1). This is the unified currency between
// the orchestrator's optimizer and every driver, for passive and
// programmable hardware alike.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace surfos::surface {

/// Per-element phase shifts (radians, wrapped to [0, 2*pi)) and amplitude
/// scalings (in [0, 1]). Always element-wise and full-resolution: hardware
/// granularity and quantization are applied by the panel/driver when the
/// configuration is realized, so upper layers always program at "the finest
/// control granularity" and the constraint projection is explicit.
class SurfaceConfig {
 public:
  SurfaceConfig() = default;

  /// Uniform configuration: zero phase shift, unit amplitude.
  explicit SurfaceConfig(std::size_t element_count);

  SurfaceConfig(std::vector<double> phases, std::vector<double> amplitudes);

  std::size_t size() const noexcept { return phases_.size(); }
  bool empty() const noexcept { return phases_.empty(); }

  std::span<const double> phases() const noexcept { return phases_; }
  std::span<const double> amplitudes() const noexcept { return amplitudes_; }

  double phase(std::size_t i) const { return phases_.at(i); }
  double amplitude(std::size_t i) const { return amplitudes_.at(i); }

  /// Sets a phase (wrapped into [0, 2*pi)).
  void set_phase(std::size_t i, double radians);
  /// Sets an amplitude (clamped into [0, 1]).
  void set_amplitude(std::size_t i, double value);

  /// Adds `radians` to every element's phase (the shift_phase() primitive).
  void shift_all_phases(double radians);

  /// Quantize phases to 2^bits uniform levels (bits <= 0 leaves continuous).
  SurfaceConfig quantized(int phase_bits) const;

  /// Wire encoding for the HAL control protocol: 16-bit phase codes +
  /// 8-bit amplitude codes, little-endian. Deterministic and compact.
  std::vector<std::uint8_t> serialize() const;
  static SurfaceConfig deserialize(std::span<const std::uint8_t> bytes);

  /// Max |wrapped phase difference| across elements — a cheap distance used
  /// by drivers to decide whether an update is worth a control message.
  double max_phase_delta(const SurfaceConfig& other) const;

  bool operator==(const SurfaceConfig& other) const noexcept = default;

 private:
  std::vector<double> phases_;
  std::vector<double> amplitudes_;
};

}  // namespace surfos::surface
