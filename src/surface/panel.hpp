// SurfacePanel: the physical model of one metasurface — element lattice
// geometry, operation mode, reconfigurability, control granularity, and the
// mapping from a SurfaceConfig to per-element complex coefficients.
//
// The channel simulator treats a panel as an array of point re-radiators;
// the HAL wraps a panel in a driver; the orchestrator's optimizer treats the
// panel's *controls* (after granularity reduction) as its decision variables.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "em/cx.hpp"
#include "geom/frame.hpp"
#include "geom/vec3.hpp"
#include "surface/config.hpp"
#include "surface/types.hpp"

namespace surfos::surface {

/// Per-element electrical design parameters.
struct ElementDesign {
  double spacing_m = 0.005;       ///< Lattice pitch (square lattice).
  double area_m2 = 0.0;           ///< Effective aperture; 0 -> spacing^2.
  int phase_bits = 0;             ///< Phase quantization; 0 = continuous.
  bool amplitude_control = false; ///< Can elements attenuate independently?
  double insertion_loss_db = 1.0; ///< Loss per surface interaction.

  double effective_area() const noexcept {
    return area_m2 > 0.0 ? area_m2 : spacing_m * spacing_m;
  }
};

class SurfacePanel {
 public:
  /// `frame` places the panel: origin at the panel center, normal facing the
  /// "front" half-space (the side a reflective panel serves).
  SurfacePanel(std::string id, geom::Frame frame, std::size_t rows,
               std::size_t cols, ElementDesign design, OperationMode op_mode,
               Reconfigurability reconfigurability,
               ControlGranularity granularity);

  const std::string& id() const noexcept { return id_; }
  const geom::Frame& frame() const noexcept { return frame_; }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t element_count() const noexcept { return rows_ * cols_; }
  const ElementDesign& design() const noexcept { return design_; }
  OperationMode op_mode() const noexcept { return op_mode_; }
  Reconfigurability reconfigurability() const noexcept { return reconfig_; }
  ControlGranularity granularity() const noexcept { return granularity_; }

  double width_m() const noexcept {
    return static_cast<double>(cols_) * design_.spacing_m;
  }
  double height_m() const noexcept {
    return static_cast<double>(rows_) * design_.spacing_m;
  }
  double area_m2() const noexcept { return width_m() * height_m(); }

  /// World-space center of element (row, col).
  geom::Vec3 element_position(std::size_t row, std::size_t col) const;
  geom::Vec3 element_position(std::size_t flat_index) const;
  const std::vector<geom::Vec3>& element_positions() const noexcept {
    return positions_;
  }

  const geom::Vec3& normal() const noexcept { return frame_.normal(); }
  geom::Vec3 center() const noexcept { return frame_.origin(); }

  /// Signed side of a point: > 0 front half-space, < 0 back.
  double side_of(const geom::Vec3& point) const noexcept;

  /// Can this panel mediate energy from `from` to `to`, given its operation
  /// mode? Reflective: both on the front side. Transmissive: opposite sides.
  /// Transflective: either.
  bool serves(const geom::Vec3& from, const geom::Vec3& to) const noexcept;

  /// |cos| of the angle between the panel normal and the direction to a
  /// point, clamped at 0 for points in the panel plane.
  double incidence_cos(const geom::Vec3& point) const noexcept;

  // --- Control parameterization -------------------------------------------

  /// Number of independently controllable phase values under this panel's
  /// granularity (element: rows*cols; column: cols; row: rows; global: 1).
  std::size_t control_count() const noexcept;

  /// Expand reduced control values into a full element-wise SurfaceConfig
  /// (replicating along the shared dimension) and apply phase quantization.
  SurfaceConfig expand_controls(std::span<const double> control_phases) const;

  /// Project an element-wise config onto this panel's granularity (circular
  /// mean along shared dimensions) and quantization — what the hardware can
  /// actually realize. Idempotent.
  SurfaceConfig realizable(const SurfaceConfig& config) const;

  /// Reduced control values of a (realizable) config.
  std::vector<double> extract_controls(const SurfaceConfig& config) const;

  /// Per-element complex coefficients c_i = a_i * L * exp(j phi_i) for a
  /// config, where L is the linear insertion loss. The config is first
  /// projected through realizable().
  em::CVec coefficients(const SurfaceConfig& config) const;

  /// Scratch-filling variant of coefficients(): writes into `out`, reusing
  /// its buffer (hot path: per-candidate coefficient mapping in the
  /// optimizer loop).
  void coefficients_into(const SurfaceConfig& config, em::CVec& out) const;

  /// Analytic focusing configuration: phases that co-phase the path
  /// source -> element -> target at `frequency_hz` (before quantization /
  /// granularity projection, which realizable() applies on use). The
  /// classic RIS beamforming profile; used for initialization and testing.
  SurfaceConfig focus_config(const geom::Vec3& source, const geom::Vec3& target,
                             double frequency_hz) const;

 private:
  std::string id_;
  geom::Frame frame_;
  std::size_t rows_, cols_;
  ElementDesign design_;
  OperationMode op_mode_;
  Reconfigurability reconfig_;
  ControlGranularity granularity_;
  std::vector<geom::Vec3> positions_;
};

}  // namespace surfos::surface
