#include "surface/catalog.hpp"

#include "util/strings.hpp"

namespace surfos::surface {

namespace {

/// Half-wavelength pitch for a band — the canonical element spacing.
double half_wavelength(em::Band band) {
  return em::wavelength(em::band_center(band)) / 2.0;
}

ElementDesign element_for(em::Band band, int phase_bits, bool amplitude,
                          double insertion_loss_db) {
  ElementDesign d;
  d.spacing_m = half_wavelength(band);
  d.phase_bits = phase_bits;
  d.amplitude_control = amplitude;
  d.insertion_loss_db = insertion_loss_db;
  return d;
}

}  // namespace

std::string CatalogEntry::band_label() const {
  if (band_high) {
    // Strip the trailing " GHz" of the lower label to render "0.9-6 GHz".
    std::string lo{em::band_name(band)};
    std::string hi{em::band_name(*band_high)};
    const auto pos = lo.find(" GHz");
    if (pos != std::string::npos) lo.resize(pos);
    return lo + "-" + hi;
  }
  return std::string{em::band_name(band)};
}

Catalog Catalog::standard() {
  using R = Reconfigurability;
  using G = ControlGranularity;
  using O = OperationMode;
  using C = ControlMode;
  namespace b = em;
  Catalog cat;
  // Order and attributes follow the paper's Table 1. Costs marked "/" in the
  // paper carry nullopt. Element models are behavioural estimates (phase
  // bits / losses from the cited papers where stated).
  cat.add({"LAIA", 2019, b::Band::k2_4GHz, {}, C::kPhase, O::kTransmissive,
           R::kProgrammable, G::kElement, std::nullopt,
           element_for(b::Band::k2_4GHz, 2, false, 2.0), 8, 8});
  cat.add({"RFocus", 2020, b::Band::k2_4GHz, {}, C::kAmplitude,
           O::kTransflective, R::kProgrammable, G::kElement, std::nullopt,
           element_for(b::Band::k2_4GHz, 1, true, 3.0), 40, 80});
  cat.add({"LLAMA", 2021, b::Band::k2_4GHz, {}, C::kPolarization,
           O::kTransflective, R::kProgrammable, G::kElement, 900.0,
           element_for(b::Band::k2_4GHz, 1, false, 2.5), 8, 6});
  cat.add({"LAVA", 2021, b::Band::k2_4GHz, {}, C::kAmplitude, O::kTransmissive,
           R::kProgrammable, G::kElement, std::nullopt,
           element_for(b::Band::k2_4GHz, 1, true, 2.0), 16, 16});
  cat.add({"ScatterMIMO", 2020, b::Band::k5GHz, {}, C::kPhase, O::kReflective,
           R::kProgrammable, G::kElement, 450.0,
           element_for(b::Band::k5GHz, 2, false, 2.0), 8, 8});
  cat.add({"RFlens", 2021, b::Band::k5GHz, {}, C::kPhase, O::kTransmissive,
           R::kProgrammable, G::kElement, 246.0,
           element_for(b::Band::k5GHz, 2, false, 2.0), 8, 8});
  cat.add({"Diffract", 2023, b::Band::k5GHz, {}, C::kDiffraction,
           O::kTransmissive, R::kPassive, G::kGlobal, 33.0,
           element_for(b::Band::k5GHz, 0, false, 1.0), 8, 8});
  cat.add({"Scrolls", 2023, b::Band::kSub1GHz, b::Band::k5GHz, C::kFrequency,
           O::kReflective, R::kProgrammable, G::kRow, 156.0,
           element_for(b::Band::k2_4GHz, 1, false, 1.5), 12, 8});
  cat.add({"mmWall", 2023, b::Band::k24GHz, {}, C::kPhase, O::kTransflective,
           R::kProgrammable, G::kColumn, 10000.0,
           element_for(b::Band::k24GHz, 3, false, 2.0), 28, 76});
  cat.add({"NR-Surface", 2024, b::Band::k24GHz, {}, C::kPhase, O::kReflective,
           R::kProgrammable, G::kColumn, 600.0,
           element_for(b::Band::k24GHz, 2, false, 2.0), 16, 16});
  cat.add({"PMSat", 2023, b::Band::k24GHz, b::Band::k28GHz, C::kPhase,
           O::kTransmissive, R::kPassive, G::kGlobal, 30.0,
           element_for(b::Band::k28GHz, 2, false, 1.0), 40, 40});
  cat.add({"MilliMirror", 2022, b::Band::k60GHz, {}, C::kPhase, O::kReflective,
           R::kPassive, G::kGlobal, 15.0,
           element_for(b::Band::k60GHz, 2, false, 1.0), 64, 64});
  cat.add({"AutoMS", 2024, b::Band::k60GHz, {}, C::kPhase, O::kReflective,
           R::kPassive, G::kGlobal, 2.0,
           element_for(b::Band::k60GHz, 2, false, 0.5), 128, 128});
  return cat;
}

const CatalogEntry* Catalog::find(const std::string& name) const noexcept {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<const CatalogEntry*> Catalog::designs_for_band(em::Band band) const {
  std::vector<const CatalogEntry*> out;
  for (const auto& e : entries_) {
    const double f = em::band_center(band);
    const double lo = em::band_center(e.band);
    const double hi = e.band_high ? em::band_center(*e.band_high) : lo;
    if (f >= lo * 0.9 && f <= hi * 1.1) out.push_back(&e);
  }
  return out;
}

const CatalogEntry* Catalog::cheapest_for(em::Band band,
                                          bool need_programmable) const {
  const CatalogEntry* best = nullptr;
  for (const CatalogEntry* e : designs_for_band(band)) {
    if (need_programmable && e->reconfigurability != Reconfigurability::kProgrammable) {
      continue;
    }
    if (!e->cost_usd) continue;  // unpriced prototypes can't win a cost query
    if (!best || *e->cost_usd < *best->cost_usd) best = e;
  }
  return best;
}

SurfacePanel instantiate(const CatalogEntry& entry, const geom::Frame& pose,
                         std::size_t rows, std::size_t cols) {
  const ControlGranularity granularity =
      entry.reconfigurability == Reconfigurability::kPassive
          ? ControlGranularity::kElement  // pattern is free at fabrication
          : entry.granularity;
  return SurfacePanel(entry.name, pose, rows, cols, entry.element,
                      entry.op_mode, entry.reconfigurability, granularity);
}

}  // namespace surfos::surface
