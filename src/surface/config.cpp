#include "surface/config.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace surfos::surface {

SurfaceConfig::SurfaceConfig(std::size_t element_count)
    : phases_(element_count, 0.0), amplitudes_(element_count, 1.0) {}

SurfaceConfig::SurfaceConfig(std::vector<double> phases,
                             std::vector<double> amplitudes)
    : phases_(std::move(phases)), amplitudes_(std::move(amplitudes)) {
  if (phases_.size() != amplitudes_.size()) {
    throw std::invalid_argument("SurfaceConfig: phase/amplitude size mismatch");
  }
  for (double& p : phases_) p = util::wrap_two_pi(p);
  for (double& a : amplitudes_) {
    if (a < 0.0) a = 0.0;
    if (a > 1.0) a = 1.0;
  }
}

void SurfaceConfig::set_phase(std::size_t i, double radians) {
  phases_.at(i) = util::wrap_two_pi(radians);
}

void SurfaceConfig::set_amplitude(std::size_t i, double value) {
  if (value < 0.0) value = 0.0;
  if (value > 1.0) value = 1.0;
  amplitudes_.at(i) = value;
}

void SurfaceConfig::shift_all_phases(double radians) {
  for (double& p : phases_) p = util::wrap_two_pi(p + radians);
}

SurfaceConfig SurfaceConfig::quantized(int phase_bits) const {
  if (phase_bits <= 0) return *this;
  const double levels = std::pow(2.0, phase_bits);
  const double step = util::kTwoPi / levels;
  SurfaceConfig out = *this;
  for (std::size_t i = 0; i < out.phases_.size(); ++i) {
    const double snapped = std::round(out.phases_[i] / step) * step;
    out.phases_[i] = util::wrap_two_pi(snapped);
  }
  return out;
}

std::vector<std::uint8_t> SurfaceConfig::serialize() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(4 + size() * 3);
  const auto n = static_cast<std::uint32_t>(size());
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<std::uint8_t>((n >> shift) & 0xFF));
  }
  for (std::size_t i = 0; i < size(); ++i) {
    const auto code = static_cast<std::uint16_t>(
        std::lround(phases_[i] / util::kTwoPi * 65535.0));
    bytes.push_back(static_cast<std::uint8_t>(code & 0xFF));
    bytes.push_back(static_cast<std::uint8_t>(code >> 8));
  }
  for (std::size_t i = 0; i < size(); ++i) {
    bytes.push_back(static_cast<std::uint8_t>(std::lround(amplitudes_[i] * 255.0)));
  }
  return bytes;
}

SurfaceConfig SurfaceConfig::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) throw std::invalid_argument("SurfaceConfig: short buffer");
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  const std::size_t expected = 4 + static_cast<std::size_t>(n) * 3;
  if (bytes.size() != expected) {
    throw std::invalid_argument("SurfaceConfig: truncated buffer");
  }
  std::vector<double> phases(n);
  std::vector<double> amplitudes(n);
  std::size_t offset = 4;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint16_t code = static_cast<std::uint16_t>(
        bytes[offset] | (static_cast<std::uint16_t>(bytes[offset + 1]) << 8));
    phases[i] = static_cast<double>(code) / 65535.0 * util::kTwoPi;
    offset += 2;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    amplitudes[i] = static_cast<double>(bytes[offset++]) / 255.0;
  }
  return SurfaceConfig{std::move(phases), std::move(amplitudes)};
}

double SurfaceConfig::max_phase_delta(const SurfaceConfig& other) const {
  if (other.size() != size()) {
    throw std::invalid_argument("SurfaceConfig: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    const double d = std::fabs(util::wrap_pi(phases_[i] - other.phases_[i]));
    if (d > worst) worst = d;
  }
  return worst;
}

}  // namespace surfos::surface
