#include "surface/panel.hpp"

#include <cmath>
#include <stdexcept>

#include "em/propagation.hpp"
#include "util/units.hpp"

namespace surfos::surface {

SurfacePanel::SurfacePanel(std::string id, geom::Frame frame, std::size_t rows,
                           std::size_t cols, ElementDesign design,
                           OperationMode op_mode,
                           Reconfigurability reconfigurability,
                           ControlGranularity granularity)
    : id_(std::move(id)),
      frame_(frame),
      rows_(rows),
      cols_(cols),
      design_(design),
      op_mode_(op_mode),
      reconfig_(reconfigurability),
      granularity_(granularity) {
  if (rows_ == 0 || cols_ == 0) {
    throw std::invalid_argument("SurfacePanel: empty lattice");
  }
  if (design_.spacing_m <= 0.0) {
    throw std::invalid_argument("SurfacePanel: non-positive element spacing");
  }
  positions_.reserve(element_count());
  const double u0 = -0.5 * (static_cast<double>(cols_) - 1.0) * design_.spacing_m;
  const double v0 = -0.5 * (static_cast<double>(rows_) - 1.0) * design_.spacing_m;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      positions_.push_back(
          frame_.to_world(u0 + static_cast<double>(c) * design_.spacing_m,
                          v0 + static_cast<double>(r) * design_.spacing_m));
    }
  }
}

geom::Vec3 SurfacePanel::element_position(std::size_t row,
                                          std::size_t col) const {
  if (row >= rows_ || col >= cols_) {
    throw std::out_of_range("SurfacePanel: element index");
  }
  return positions_[row * cols_ + col];
}

geom::Vec3 SurfacePanel::element_position(std::size_t flat_index) const {
  if (flat_index >= positions_.size()) {
    throw std::out_of_range("SurfacePanel: element index");
  }
  return positions_[flat_index];
}

double SurfacePanel::side_of(const geom::Vec3& point) const noexcept {
  return (point - frame_.origin()).dot(frame_.normal());
}

bool SurfacePanel::serves(const geom::Vec3& from,
                          const geom::Vec3& to) const noexcept {
  const double sf = side_of(from);
  const double st = side_of(to);
  switch (op_mode_) {
    case OperationMode::kReflective: return sf > 0.0 && st > 0.0;
    case OperationMode::kTransmissive: return sf * st < 0.0;
    case OperationMode::kTransflective: return sf != 0.0 && st != 0.0;
  }
  return false;
}

double SurfacePanel::incidence_cos(const geom::Vec3& point) const noexcept {
  const geom::Vec3 d = point - frame_.origin();
  const double n = d.norm();
  if (n < 1e-12) return 0.0;
  return std::fabs(d.dot(frame_.normal())) / n;
}

std::size_t SurfacePanel::control_count() const noexcept {
  switch (granularity_) {
    case ControlGranularity::kElement: return rows_ * cols_;
    case ControlGranularity::kColumn: return cols_;
    case ControlGranularity::kRow: return rows_;
    case ControlGranularity::kGlobal: return 1;
  }
  return 0;
}

SurfaceConfig SurfacePanel::expand_controls(
    std::span<const double> control_phases) const {
  if (control_phases.size() != control_count()) {
    throw std::invalid_argument("SurfacePanel: control count mismatch");
  }
  SurfaceConfig config(element_count());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      std::size_t control = 0;
      switch (granularity_) {
        case ControlGranularity::kElement: control = r * cols_ + c; break;
        case ControlGranularity::kColumn: control = c; break;
        case ControlGranularity::kRow: control = r; break;
        case ControlGranularity::kGlobal: control = 0; break;
      }
      config.set_phase(r * cols_ + c, control_phases[control]);
    }
  }
  return config.quantized(design_.phase_bits);
}

SurfaceConfig SurfacePanel::realizable(const SurfaceConfig& config) const {
  if (config.size() != element_count()) {
    throw std::invalid_argument("SurfacePanel: config size mismatch");
  }
  SurfaceConfig out = config;
  if (granularity_ != ControlGranularity::kElement) {
    // Circular mean of phases within each shared control group.
    const std::size_t groups = control_count();
    std::vector<double> sum_cos(groups, 0.0);
    std::vector<double> sum_sin(groups, 0.0);
    auto group_of = [&](std::size_t r, std::size_t c) -> std::size_t {
      switch (granularity_) {
        case ControlGranularity::kColumn: return c;
        case ControlGranularity::kRow: return r;
        case ControlGranularity::kGlobal: return 0;
        case ControlGranularity::kElement: return r * cols_ + c;
      }
      return 0;
    };
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        const double p = config.phase(r * cols_ + c);
        sum_cos[group_of(r, c)] += std::cos(p);
        sum_sin[group_of(r, c)] += std::sin(p);
      }
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        const std::size_t g = group_of(r, c);
        out.set_phase(r * cols_ + c, std::atan2(sum_sin[g], sum_cos[g]));
      }
    }
  }
  if (!design_.amplitude_control) {
    for (std::size_t i = 0; i < out.size(); ++i) out.set_amplitude(i, 1.0);
  }
  return out.quantized(design_.phase_bits);
}

std::vector<double> SurfacePanel::extract_controls(
    const SurfaceConfig& config) const {
  const SurfaceConfig real = realizable(config);
  std::vector<double> controls(control_count());
  switch (granularity_) {
    case ControlGranularity::kElement:
      for (std::size_t i = 0; i < real.size(); ++i) controls[i] = real.phase(i);
      break;
    case ControlGranularity::kColumn:
      for (std::size_t c = 0; c < cols_; ++c) controls[c] = real.phase(c);
      break;
    case ControlGranularity::kRow:
      for (std::size_t r = 0; r < rows_; ++r) controls[r] = real.phase(r * cols_);
      break;
    case ControlGranularity::kGlobal:
      controls[0] = real.phase(0);
      break;
  }
  return controls;
}

em::CVec SurfacePanel::coefficients(const SurfaceConfig& config) const {
  em::CVec out;
  coefficients_into(config, out);
  return out;
}

void SurfacePanel::coefficients_into(const SurfaceConfig& config,
                                     em::CVec& out) const {
  const SurfaceConfig real = realizable(config);
  const double loss = std::pow(10.0, -design_.insertion_loss_db / 20.0);
  out.resize(real.size());
  for (std::size_t i = 0; i < real.size(); ++i) {
    out[i] = std::polar(real.amplitude(i) * loss, real.phase(i));
  }
}

SurfaceConfig SurfacePanel::focus_config(const geom::Vec3& source,
                                         const geom::Vec3& target,
                                         double frequency_hz) const {
  const double k = em::wavenumber(frequency_hz);
  SurfaceConfig config(element_count());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const double d = positions_[i].distance_to(source) +
                     positions_[i].distance_to(target);
    // Cancel the propagation phase -k*d so all element paths add in phase.
    config.set_phase(i, k * d);
  }
  return config;
}

}  // namespace surfos::surface
