// Cost and size models for surface deployments (paper Fig 4b/4c: "cost and
// sizes needed to reach different median SNRs").
//
// The model reflects the paper's Section 2.1 economics: programmable
// surfaces "cost over $2 per element" plus control circuitry, while fully
// passive surfaces are "very low-cost, e.g., $1 for 60 thousand elements".
#pragma once

#include "surface/panel.hpp"
#include "surface/types.hpp"

namespace surfos::surface {

struct CostModel {
  // Programmable hardware: per-element unit cost (varactors/PIN diodes +
  // bias network) and a fixed controller/PCB base.
  double programmable_per_element_usd = 2.5;
  double programmable_base_usd = 80.0;
  // Column/row-wise control shares driver circuitry across a line of
  // elements, discounting the per-element cost (mmWall/NR-Surface style).
  double shared_line_discount = 0.4;
  // Passive hardware: fabrication cost per element plus setup.
  double passive_per_element_usd = 0.002;
  double passive_base_usd = 5.0;

  /// Dollar cost of one panel.
  double panel_cost_usd(const SurfacePanel& panel) const noexcept;

  /// Physical aperture area in m^2 (the paper's "size" axis).
  static double panel_area_m2(const SurfacePanel& panel) noexcept {
    return panel.area_m2();
  }
};

}  // namespace surfos::surface
