// Hardware catalog: the thirteen published surface systems in the paper's
// Table 1, with the attributes SurfOS's hardware manager needs to plan
// around (band, control mode, T/R, reconfigurability/granularity, cost).
//
// The catalog doubles as a design database (paper Section 5: "LLMs can locate
// an appropriate design from a surface design database"): the broker's
// design-automation path queries it by band/requirements, and instantiate()
// builds a behavioural SurfacePanel for the channel simulator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "em/band.hpp"
#include "geom/frame.hpp"
#include "surface/panel.hpp"
#include "surface/types.hpp"

namespace surfos::surface {

struct CatalogEntry {
  std::string name;
  int year = 0;
  em::Band band;                     ///< Primary operating band.
  std::optional<em::Band> band_high; ///< Upper edge for wideband designs.
  ControlMode control_mode;
  OperationMode op_mode;
  Reconfigurability reconfigurability;
  ControlGranularity granularity;    ///< Meaningful when programmable.
  std::optional<double> cost_usd;    ///< Published prototype cost; nullopt = "/".
  ElementDesign element;             ///< Behavioural element model.
  std::size_t typical_rows = 16;
  std::size_t typical_cols = 16;

  /// "0.9-6 GHz" style label for table output.
  std::string band_label() const;
};

class Catalog {
 public:
  /// The thirteen Table-1 systems, in the paper's order.
  static Catalog standard();

  const std::vector<CatalogEntry>& entries() const noexcept { return entries_; }

  const CatalogEntry* find(const std::string& name) const noexcept;

  /// Designs usable on a band (exact band, or within a wideband range).
  std::vector<const CatalogEntry*> designs_for_band(em::Band band) const;

  /// Design-database query for the automation workflow: cheapest design for
  /// a band, optionally requiring runtime reconfigurability. Returns nullptr
  /// when no design fits (the paper's "existing designs are inadequate" case).
  const CatalogEntry* cheapest_for(em::Band band, bool need_programmable) const;

  void add(CatalogEntry entry) { entries_.push_back(std::move(entry)); }

 private:
  std::vector<CatalogEntry> entries_;
};

/// Build a behavioural panel for a catalog design at a deployment pose.
SurfacePanel instantiate(const CatalogEntry& entry, const geom::Frame& pose,
                         std::size_t rows, std::size_t cols);

}  // namespace surfos::surface
