# Empty dependencies file for bench_abl_granularity.
# This may be replaced when dependencies are built.
