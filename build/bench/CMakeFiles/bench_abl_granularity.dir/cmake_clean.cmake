file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_granularity.dir/bench_abl_granularity.cpp.o"
  "CMakeFiles/bench_abl_granularity.dir/bench_abl_granularity.cpp.o.d"
  "bench_abl_granularity"
  "bench_abl_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
