# Empty dependencies file for bench_abl_security.
# This may be replaced when dependencies are built.
