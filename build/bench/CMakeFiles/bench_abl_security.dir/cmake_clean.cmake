file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_security.dir/bench_abl_security.cpp.o"
  "CMakeFiles/bench_abl_security.dir/bench_abl_security.cpp.o.d"
  "bench_abl_security"
  "bench_abl_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
