# Empty compiler generated dependencies file for bench_abl_dynamics.
# This may be replaced when dependencies are built.
