file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dynamics.dir/bench_abl_dynamics.cpp.o"
  "CMakeFiles/bench_abl_dynamics.dir/bench_abl_dynamics.cpp.o.d"
  "bench_abl_dynamics"
  "bench_abl_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
