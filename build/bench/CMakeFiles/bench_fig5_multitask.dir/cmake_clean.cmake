file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_multitask.dir/bench_fig5_multitask.cpp.o"
  "CMakeFiles/bench_fig5_multitask.dir/bench_fig5_multitask.cpp.o.d"
  "bench_fig5_multitask"
  "bench_fig5_multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
