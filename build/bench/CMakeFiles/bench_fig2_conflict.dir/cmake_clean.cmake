file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_conflict.dir/bench_fig2_conflict.cpp.o"
  "CMakeFiles/bench_fig2_conflict.dir/bench_fig2_conflict.cpp.o.d"
  "bench_fig2_conflict"
  "bench_fig2_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
