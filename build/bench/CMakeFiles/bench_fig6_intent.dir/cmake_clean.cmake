file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_intent.dir/bench_fig6_intent.cpp.o"
  "CMakeFiles/bench_fig6_intent.dir/bench_fig6_intent.cpp.o.d"
  "bench_fig6_intent"
  "bench_fig6_intent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_intent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
