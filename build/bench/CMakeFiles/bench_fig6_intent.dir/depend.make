# Empty dependencies file for bench_fig6_intent.
# This may be replaced when dependencies are built.
