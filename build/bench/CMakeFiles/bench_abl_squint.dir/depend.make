# Empty dependencies file for bench_abl_squint.
# This may be replaced when dependencies are built.
