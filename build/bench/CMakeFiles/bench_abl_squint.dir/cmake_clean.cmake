file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_squint.dir/bench_abl_squint.cpp.o"
  "CMakeFiles/bench_abl_squint.dir/bench_abl_squint.cpp.o.d"
  "bench_abl_squint"
  "bench_abl_squint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_squint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
