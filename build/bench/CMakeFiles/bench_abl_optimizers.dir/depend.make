# Empty dependencies file for bench_abl_optimizers.
# This may be replaced when dependencies are built.
