file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_optimizers.dir/bench_abl_optimizers.cpp.o"
  "CMakeFiles/bench_abl_optimizers.dir/bench_abl_optimizers.cpp.o.d"
  "bench_abl_optimizers"
  "bench_abl_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
