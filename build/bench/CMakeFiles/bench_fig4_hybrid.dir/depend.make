# Empty dependencies file for bench_fig4_hybrid.
# This may be replaced when dependencies are built.
