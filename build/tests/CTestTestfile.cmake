# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_em[1]_include.cmake")
include("/root/repo/build/tests/test_surface[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_sense[1]_include.cmake")
include("/root/repo/build/tests/test_hal[1]_include.cmake")
include("/root/repo/build/tests/test_orch[1]_include.cmake")
include("/root/repo/build/tests/test_broker[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_reliable[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_motion[1]_include.cmake")
include("/root/repo/build/tests/test_tof[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
