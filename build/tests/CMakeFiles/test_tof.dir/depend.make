# Empty dependencies file for test_tof.
# This may be replaced when dependencies are built.
