file(REMOVE_RECURSE
  "CMakeFiles/test_tof.dir/test_tof.cpp.o"
  "CMakeFiles/test_tof.dir/test_tof.cpp.o.d"
  "test_tof"
  "test_tof.pdb"
  "test_tof[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
