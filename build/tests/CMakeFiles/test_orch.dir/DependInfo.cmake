
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_orch.cpp" "tests/CMakeFiles/test_orch.dir/test_orch.cpp.o" "gcc" "tests/CMakeFiles/test_orch.dir/test_orch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/surfos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/surfos_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/orch/CMakeFiles/surfos_orch.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/surfos_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/surfos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sense/CMakeFiles/surfos_sense.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/surfos_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/surface/CMakeFiles/surfos_surface.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/surfos_em.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/surfos_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
