
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hal/codebook.cpp" "src/hal/CMakeFiles/surfos_hal.dir/codebook.cpp.o" "gcc" "src/hal/CMakeFiles/surfos_hal.dir/codebook.cpp.o.d"
  "/root/repo/src/hal/crc32.cpp" "src/hal/CMakeFiles/surfos_hal.dir/crc32.cpp.o" "gcc" "src/hal/CMakeFiles/surfos_hal.dir/crc32.cpp.o.d"
  "/root/repo/src/hal/driver.cpp" "src/hal/CMakeFiles/surfos_hal.dir/driver.cpp.o" "gcc" "src/hal/CMakeFiles/surfos_hal.dir/driver.cpp.o.d"
  "/root/repo/src/hal/feedback.cpp" "src/hal/CMakeFiles/surfos_hal.dir/feedback.cpp.o" "gcc" "src/hal/CMakeFiles/surfos_hal.dir/feedback.cpp.o.d"
  "/root/repo/src/hal/link.cpp" "src/hal/CMakeFiles/surfos_hal.dir/link.cpp.o" "gcc" "src/hal/CMakeFiles/surfos_hal.dir/link.cpp.o.d"
  "/root/repo/src/hal/protocol.cpp" "src/hal/CMakeFiles/surfos_hal.dir/protocol.cpp.o" "gcc" "src/hal/CMakeFiles/surfos_hal.dir/protocol.cpp.o.d"
  "/root/repo/src/hal/registry.cpp" "src/hal/CMakeFiles/surfos_hal.dir/registry.cpp.o" "gcc" "src/hal/CMakeFiles/surfos_hal.dir/registry.cpp.o.d"
  "/root/repo/src/hal/reliable.cpp" "src/hal/CMakeFiles/surfos_hal.dir/reliable.cpp.o" "gcc" "src/hal/CMakeFiles/surfos_hal.dir/reliable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/surface/CMakeFiles/surfos_surface.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/surfos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/surfos_em.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/surfos_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
