# Empty compiler generated dependencies file for surfos_hal.
# This may be replaced when dependencies are built.
