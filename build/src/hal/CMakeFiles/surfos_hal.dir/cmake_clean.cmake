file(REMOVE_RECURSE
  "CMakeFiles/surfos_hal.dir/codebook.cpp.o"
  "CMakeFiles/surfos_hal.dir/codebook.cpp.o.d"
  "CMakeFiles/surfos_hal.dir/crc32.cpp.o"
  "CMakeFiles/surfos_hal.dir/crc32.cpp.o.d"
  "CMakeFiles/surfos_hal.dir/driver.cpp.o"
  "CMakeFiles/surfos_hal.dir/driver.cpp.o.d"
  "CMakeFiles/surfos_hal.dir/feedback.cpp.o"
  "CMakeFiles/surfos_hal.dir/feedback.cpp.o.d"
  "CMakeFiles/surfos_hal.dir/link.cpp.o"
  "CMakeFiles/surfos_hal.dir/link.cpp.o.d"
  "CMakeFiles/surfos_hal.dir/protocol.cpp.o"
  "CMakeFiles/surfos_hal.dir/protocol.cpp.o.d"
  "CMakeFiles/surfos_hal.dir/registry.cpp.o"
  "CMakeFiles/surfos_hal.dir/registry.cpp.o.d"
  "CMakeFiles/surfos_hal.dir/reliable.cpp.o"
  "CMakeFiles/surfos_hal.dir/reliable.cpp.o.d"
  "libsurfos_hal.a"
  "libsurfos_hal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
