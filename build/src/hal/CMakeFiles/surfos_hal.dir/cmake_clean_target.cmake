file(REMOVE_RECURSE
  "libsurfos_hal.a"
)
