file(REMOVE_RECURSE
  "CMakeFiles/surfos_geom.dir/bvh.cpp.o"
  "CMakeFiles/surfos_geom.dir/bvh.cpp.o.d"
  "CMakeFiles/surfos_geom.dir/mesh.cpp.o"
  "CMakeFiles/surfos_geom.dir/mesh.cpp.o.d"
  "libsurfos_geom.a"
  "libsurfos_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
