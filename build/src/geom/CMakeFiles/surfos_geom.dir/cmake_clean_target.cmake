file(REMOVE_RECURSE
  "libsurfos_geom.a"
)
