# Empty dependencies file for surfos_geom.
# This may be replaced when dependencies are built.
