
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/antenna.cpp" "src/em/CMakeFiles/surfos_em.dir/antenna.cpp.o" "gcc" "src/em/CMakeFiles/surfos_em.dir/antenna.cpp.o.d"
  "/root/repo/src/em/material.cpp" "src/em/CMakeFiles/surfos_em.dir/material.cpp.o" "gcc" "src/em/CMakeFiles/surfos_em.dir/material.cpp.o.d"
  "/root/repo/src/em/propagation.cpp" "src/em/CMakeFiles/surfos_em.dir/propagation.cpp.o" "gcc" "src/em/CMakeFiles/surfos_em.dir/propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/surfos_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
