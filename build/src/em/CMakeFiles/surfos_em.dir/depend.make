# Empty dependencies file for surfos_em.
# This may be replaced when dependencies are built.
