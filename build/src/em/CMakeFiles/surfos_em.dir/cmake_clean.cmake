file(REMOVE_RECURSE
  "CMakeFiles/surfos_em.dir/antenna.cpp.o"
  "CMakeFiles/surfos_em.dir/antenna.cpp.o.d"
  "CMakeFiles/surfos_em.dir/material.cpp.o"
  "CMakeFiles/surfos_em.dir/material.cpp.o.d"
  "CMakeFiles/surfos_em.dir/propagation.cpp.o"
  "CMakeFiles/surfos_em.dir/propagation.cpp.o.d"
  "libsurfos_em.a"
  "libsurfos_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
