file(REMOVE_RECURSE
  "libsurfos_em.a"
)
