
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/channel.cpp" "src/sim/CMakeFiles/surfos_sim.dir/channel.cpp.o" "gcc" "src/sim/CMakeFiles/surfos_sim.dir/channel.cpp.o.d"
  "/root/repo/src/sim/dynamics.cpp" "src/sim/CMakeFiles/surfos_sim.dir/dynamics.cpp.o" "gcc" "src/sim/CMakeFiles/surfos_sim.dir/dynamics.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/sim/CMakeFiles/surfos_sim.dir/environment.cpp.o" "gcc" "src/sim/CMakeFiles/surfos_sim.dir/environment.cpp.o.d"
  "/root/repo/src/sim/floorplan.cpp" "src/sim/CMakeFiles/surfos_sim.dir/floorplan.cpp.o" "gcc" "src/sim/CMakeFiles/surfos_sim.dir/floorplan.cpp.o.d"
  "/root/repo/src/sim/heatmap.cpp" "src/sim/CMakeFiles/surfos_sim.dir/heatmap.cpp.o" "gcc" "src/sim/CMakeFiles/surfos_sim.dir/heatmap.cpp.o.d"
  "/root/repo/src/sim/raytracer.cpp" "src/sim/CMakeFiles/surfos_sim.dir/raytracer.cpp.o" "gcc" "src/sim/CMakeFiles/surfos_sim.dir/raytracer.cpp.o.d"
  "/root/repo/src/sim/wideband.cpp" "src/sim/CMakeFiles/surfos_sim.dir/wideband.cpp.o" "gcc" "src/sim/CMakeFiles/surfos_sim.dir/wideband.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/surface/CMakeFiles/surfos_surface.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/surfos_em.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/surfos_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
