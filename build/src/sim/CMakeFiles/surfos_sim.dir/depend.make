# Empty dependencies file for surfos_sim.
# This may be replaced when dependencies are built.
