file(REMOVE_RECURSE
  "libsurfos_sim.a"
)
