file(REMOVE_RECURSE
  "CMakeFiles/surfos_sim.dir/channel.cpp.o"
  "CMakeFiles/surfos_sim.dir/channel.cpp.o.d"
  "CMakeFiles/surfos_sim.dir/dynamics.cpp.o"
  "CMakeFiles/surfos_sim.dir/dynamics.cpp.o.d"
  "CMakeFiles/surfos_sim.dir/environment.cpp.o"
  "CMakeFiles/surfos_sim.dir/environment.cpp.o.d"
  "CMakeFiles/surfos_sim.dir/floorplan.cpp.o"
  "CMakeFiles/surfos_sim.dir/floorplan.cpp.o.d"
  "CMakeFiles/surfos_sim.dir/heatmap.cpp.o"
  "CMakeFiles/surfos_sim.dir/heatmap.cpp.o.d"
  "CMakeFiles/surfos_sim.dir/raytracer.cpp.o"
  "CMakeFiles/surfos_sim.dir/raytracer.cpp.o.d"
  "CMakeFiles/surfos_sim.dir/wideband.cpp.o"
  "CMakeFiles/surfos_sim.dir/wideband.cpp.o.d"
  "libsurfos_sim.a"
  "libsurfos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
