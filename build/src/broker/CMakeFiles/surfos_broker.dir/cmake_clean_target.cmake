file(REMOVE_RECURSE
  "libsurfos_broker.a"
)
