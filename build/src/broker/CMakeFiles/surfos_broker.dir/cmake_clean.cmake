file(REMOVE_RECURSE
  "CMakeFiles/surfos_broker.dir/broker.cpp.o"
  "CMakeFiles/surfos_broker.dir/broker.cpp.o.d"
  "CMakeFiles/surfos_broker.dir/demand.cpp.o"
  "CMakeFiles/surfos_broker.dir/demand.cpp.o.d"
  "CMakeFiles/surfos_broker.dir/intent.cpp.o"
  "CMakeFiles/surfos_broker.dir/intent.cpp.o.d"
  "CMakeFiles/surfos_broker.dir/monitor.cpp.o"
  "CMakeFiles/surfos_broker.dir/monitor.cpp.o.d"
  "CMakeFiles/surfos_broker.dir/specgen.cpp.o"
  "CMakeFiles/surfos_broker.dir/specgen.cpp.o.d"
  "CMakeFiles/surfos_broker.dir/translate.cpp.o"
  "CMakeFiles/surfos_broker.dir/translate.cpp.o.d"
  "libsurfos_broker.a"
  "libsurfos_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
