# Empty compiler generated dependencies file for surfos_broker.
# This may be replaced when dependencies are built.
