# Empty compiler generated dependencies file for surfos_sense.
# This may be replaced when dependencies are built.
