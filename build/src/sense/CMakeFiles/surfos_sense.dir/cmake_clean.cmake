file(REMOVE_RECURSE
  "CMakeFiles/surfos_sense.dir/aoa.cpp.o"
  "CMakeFiles/surfos_sense.dir/aoa.cpp.o.d"
  "CMakeFiles/surfos_sense.dir/eigen.cpp.o"
  "CMakeFiles/surfos_sense.dir/eigen.cpp.o.d"
  "CMakeFiles/surfos_sense.dir/localize.cpp.o"
  "CMakeFiles/surfos_sense.dir/localize.cpp.o.d"
  "CMakeFiles/surfos_sense.dir/motion.cpp.o"
  "CMakeFiles/surfos_sense.dir/motion.cpp.o.d"
  "CMakeFiles/surfos_sense.dir/steering.cpp.o"
  "CMakeFiles/surfos_sense.dir/steering.cpp.o.d"
  "CMakeFiles/surfos_sense.dir/tof.cpp.o"
  "CMakeFiles/surfos_sense.dir/tof.cpp.o.d"
  "libsurfos_sense.a"
  "libsurfos_sense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_sense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
