file(REMOVE_RECURSE
  "libsurfos_sense.a"
)
