
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sense/aoa.cpp" "src/sense/CMakeFiles/surfos_sense.dir/aoa.cpp.o" "gcc" "src/sense/CMakeFiles/surfos_sense.dir/aoa.cpp.o.d"
  "/root/repo/src/sense/eigen.cpp" "src/sense/CMakeFiles/surfos_sense.dir/eigen.cpp.o" "gcc" "src/sense/CMakeFiles/surfos_sense.dir/eigen.cpp.o.d"
  "/root/repo/src/sense/localize.cpp" "src/sense/CMakeFiles/surfos_sense.dir/localize.cpp.o" "gcc" "src/sense/CMakeFiles/surfos_sense.dir/localize.cpp.o.d"
  "/root/repo/src/sense/motion.cpp" "src/sense/CMakeFiles/surfos_sense.dir/motion.cpp.o" "gcc" "src/sense/CMakeFiles/surfos_sense.dir/motion.cpp.o.d"
  "/root/repo/src/sense/steering.cpp" "src/sense/CMakeFiles/surfos_sense.dir/steering.cpp.o" "gcc" "src/sense/CMakeFiles/surfos_sense.dir/steering.cpp.o.d"
  "/root/repo/src/sense/tof.cpp" "src/sense/CMakeFiles/surfos_sense.dir/tof.cpp.o" "gcc" "src/sense/CMakeFiles/surfos_sense.dir/tof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/surface/CMakeFiles/surfos_surface.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/surfos_em.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/surfos_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
