# Empty compiler generated dependencies file for surfos_util.
# This may be replaced when dependencies are built.
