file(REMOVE_RECURSE
  "CMakeFiles/surfos_util.dir/csv.cpp.o"
  "CMakeFiles/surfos_util.dir/csv.cpp.o.d"
  "CMakeFiles/surfos_util.dir/log.cpp.o"
  "CMakeFiles/surfos_util.dir/log.cpp.o.d"
  "CMakeFiles/surfos_util.dir/strings.cpp.o"
  "CMakeFiles/surfos_util.dir/strings.cpp.o.d"
  "CMakeFiles/surfos_util.dir/table.cpp.o"
  "CMakeFiles/surfos_util.dir/table.cpp.o.d"
  "libsurfos_util.a"
  "libsurfos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
