file(REMOVE_RECURSE
  "libsurfos_util.a"
)
