# Empty compiler generated dependencies file for surfos_orch.
# This may be replaced when dependencies are built.
