file(REMOVE_RECURSE
  "CMakeFiles/surfos_orch.dir/objectives.cpp.o"
  "CMakeFiles/surfos_orch.dir/objectives.cpp.o.d"
  "CMakeFiles/surfos_orch.dir/orchestrator.cpp.o"
  "CMakeFiles/surfos_orch.dir/orchestrator.cpp.o.d"
  "CMakeFiles/surfos_orch.dir/perf.cpp.o"
  "CMakeFiles/surfos_orch.dir/perf.cpp.o.d"
  "CMakeFiles/surfos_orch.dir/placement.cpp.o"
  "CMakeFiles/surfos_orch.dir/placement.cpp.o.d"
  "CMakeFiles/surfos_orch.dir/scheduler.cpp.o"
  "CMakeFiles/surfos_orch.dir/scheduler.cpp.o.d"
  "CMakeFiles/surfos_orch.dir/task.cpp.o"
  "CMakeFiles/surfos_orch.dir/task.cpp.o.d"
  "CMakeFiles/surfos_orch.dir/variables.cpp.o"
  "CMakeFiles/surfos_orch.dir/variables.cpp.o.d"
  "libsurfos_orch.a"
  "libsurfos_orch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_orch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
