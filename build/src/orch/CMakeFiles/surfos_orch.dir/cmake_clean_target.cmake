file(REMOVE_RECURSE
  "libsurfos_orch.a"
)
