# Empty compiler generated dependencies file for surfos_opt.
# This may be replaced when dependencies are built.
