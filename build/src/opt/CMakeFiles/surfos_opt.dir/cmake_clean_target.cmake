file(REMOVE_RECURSE
  "libsurfos_opt.a"
)
