file(REMOVE_RECURSE
  "CMakeFiles/surfos_opt.dir/adam.cpp.o"
  "CMakeFiles/surfos_opt.dir/adam.cpp.o.d"
  "CMakeFiles/surfos_opt.dir/annealing.cpp.o"
  "CMakeFiles/surfos_opt.dir/annealing.cpp.o.d"
  "CMakeFiles/surfos_opt.dir/cmaes.cpp.o"
  "CMakeFiles/surfos_opt.dir/cmaes.cpp.o.d"
  "CMakeFiles/surfos_opt.dir/gradient_descent.cpp.o"
  "CMakeFiles/surfos_opt.dir/gradient_descent.cpp.o.d"
  "CMakeFiles/surfos_opt.dir/objective.cpp.o"
  "CMakeFiles/surfos_opt.dir/objective.cpp.o.d"
  "CMakeFiles/surfos_opt.dir/random_search.cpp.o"
  "CMakeFiles/surfos_opt.dir/random_search.cpp.o.d"
  "CMakeFiles/surfos_opt.dir/spsa.cpp.o"
  "CMakeFiles/surfos_opt.dir/spsa.cpp.o.d"
  "libsurfos_opt.a"
  "libsurfos_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
