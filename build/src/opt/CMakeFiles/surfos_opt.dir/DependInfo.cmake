
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/adam.cpp" "src/opt/CMakeFiles/surfos_opt.dir/adam.cpp.o" "gcc" "src/opt/CMakeFiles/surfos_opt.dir/adam.cpp.o.d"
  "/root/repo/src/opt/annealing.cpp" "src/opt/CMakeFiles/surfos_opt.dir/annealing.cpp.o" "gcc" "src/opt/CMakeFiles/surfos_opt.dir/annealing.cpp.o.d"
  "/root/repo/src/opt/cmaes.cpp" "src/opt/CMakeFiles/surfos_opt.dir/cmaes.cpp.o" "gcc" "src/opt/CMakeFiles/surfos_opt.dir/cmaes.cpp.o.d"
  "/root/repo/src/opt/gradient_descent.cpp" "src/opt/CMakeFiles/surfos_opt.dir/gradient_descent.cpp.o" "gcc" "src/opt/CMakeFiles/surfos_opt.dir/gradient_descent.cpp.o.d"
  "/root/repo/src/opt/objective.cpp" "src/opt/CMakeFiles/surfos_opt.dir/objective.cpp.o" "gcc" "src/opt/CMakeFiles/surfos_opt.dir/objective.cpp.o.d"
  "/root/repo/src/opt/random_search.cpp" "src/opt/CMakeFiles/surfos_opt.dir/random_search.cpp.o" "gcc" "src/opt/CMakeFiles/surfos_opt.dir/random_search.cpp.o.d"
  "/root/repo/src/opt/spsa.cpp" "src/opt/CMakeFiles/surfos_opt.dir/spsa.cpp.o" "gcc" "src/opt/CMakeFiles/surfos_opt.dir/spsa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/surfos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
