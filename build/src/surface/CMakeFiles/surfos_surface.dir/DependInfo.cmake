
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surface/catalog.cpp" "src/surface/CMakeFiles/surfos_surface.dir/catalog.cpp.o" "gcc" "src/surface/CMakeFiles/surfos_surface.dir/catalog.cpp.o.d"
  "/root/repo/src/surface/config.cpp" "src/surface/CMakeFiles/surfos_surface.dir/config.cpp.o" "gcc" "src/surface/CMakeFiles/surfos_surface.dir/config.cpp.o.d"
  "/root/repo/src/surface/cost.cpp" "src/surface/CMakeFiles/surfos_surface.dir/cost.cpp.o" "gcc" "src/surface/CMakeFiles/surfos_surface.dir/cost.cpp.o.d"
  "/root/repo/src/surface/panel.cpp" "src/surface/CMakeFiles/surfos_surface.dir/panel.cpp.o" "gcc" "src/surface/CMakeFiles/surfos_surface.dir/panel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/em/CMakeFiles/surfos_em.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/surfos_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
