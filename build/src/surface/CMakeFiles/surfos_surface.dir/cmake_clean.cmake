file(REMOVE_RECURSE
  "CMakeFiles/surfos_surface.dir/catalog.cpp.o"
  "CMakeFiles/surfos_surface.dir/catalog.cpp.o.d"
  "CMakeFiles/surfos_surface.dir/config.cpp.o"
  "CMakeFiles/surfos_surface.dir/config.cpp.o.d"
  "CMakeFiles/surfos_surface.dir/cost.cpp.o"
  "CMakeFiles/surfos_surface.dir/cost.cpp.o.d"
  "CMakeFiles/surfos_surface.dir/panel.cpp.o"
  "CMakeFiles/surfos_surface.dir/panel.cpp.o.d"
  "libsurfos_surface.a"
  "libsurfos_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
