file(REMOVE_RECURSE
  "libsurfos_surface.a"
)
