# Empty compiler generated dependencies file for surfos_surface.
# This may be replaced when dependencies are built.
