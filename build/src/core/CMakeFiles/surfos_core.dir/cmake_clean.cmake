file(REMOVE_RECURSE
  "CMakeFiles/surfos_core.dir/fleet.cpp.o"
  "CMakeFiles/surfos_core.dir/fleet.cpp.o.d"
  "CMakeFiles/surfos_core.dir/surfos.cpp.o"
  "CMakeFiles/surfos_core.dir/surfos.cpp.o.d"
  "libsurfos_core.a"
  "libsurfos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
