file(REMOVE_RECURSE
  "libsurfos_core.a"
)
