# Empty compiler generated dependencies file for surfos_core.
# This may be replaced when dependencies are built.
