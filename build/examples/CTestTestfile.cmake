# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hybrid_coverage "/root/repo/build/examples/hybrid_coverage")
set_tests_properties(example_hybrid_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_joint_comm_sensing "/root/repo/build/examples/joint_comm_sensing")
set_tests_properties(example_joint_comm_sensing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_intent_assistant "/root/repo/build/examples/intent_assistant")
set_tests_properties(example_intent_assistant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_service_daemon "/root/repo/build/examples/multi_service_daemon")
set_tests_properties(example_multi_service_daemon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deployment_planner "/root/repo/build/examples/deployment_planner")
set_tests_properties(example_deployment_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensing_suite "/root/repo/build/examples/sensing_suite")
set_tests_properties(example_sensing_suite PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
