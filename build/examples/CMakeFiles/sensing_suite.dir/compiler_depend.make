# Empty compiler generated dependencies file for sensing_suite.
# This may be replaced when dependencies are built.
