file(REMOVE_RECURSE
  "CMakeFiles/sensing_suite.dir/sensing_suite.cpp.o"
  "CMakeFiles/sensing_suite.dir/sensing_suite.cpp.o.d"
  "sensing_suite"
  "sensing_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensing_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
