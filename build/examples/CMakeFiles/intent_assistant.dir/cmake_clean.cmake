file(REMOVE_RECURSE
  "CMakeFiles/intent_assistant.dir/intent_assistant.cpp.o"
  "CMakeFiles/intent_assistant.dir/intent_assistant.cpp.o.d"
  "intent_assistant"
  "intent_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intent_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
