# Empty compiler generated dependencies file for intent_assistant.
# This may be replaced when dependencies are built.
