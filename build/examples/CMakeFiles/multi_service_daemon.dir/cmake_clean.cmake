file(REMOVE_RECURSE
  "CMakeFiles/multi_service_daemon.dir/multi_service_daemon.cpp.o"
  "CMakeFiles/multi_service_daemon.dir/multi_service_daemon.cpp.o.d"
  "multi_service_daemon"
  "multi_service_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_service_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
