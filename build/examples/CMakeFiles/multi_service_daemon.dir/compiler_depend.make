# Empty compiler generated dependencies file for multi_service_daemon.
# This may be replaced when dependencies are built.
