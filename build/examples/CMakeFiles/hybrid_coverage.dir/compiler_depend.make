# Empty compiler generated dependencies file for hybrid_coverage.
# This may be replaced when dependencies are built.
