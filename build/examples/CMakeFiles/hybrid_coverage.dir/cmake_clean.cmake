file(REMOVE_RECURSE
  "CMakeFiles/hybrid_coverage.dir/hybrid_coverage.cpp.o"
  "CMakeFiles/hybrid_coverage.dir/hybrid_coverage.cpp.o.d"
  "hybrid_coverage"
  "hybrid_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
