# Empty compiler generated dependencies file for joint_comm_sensing.
# This may be replaced when dependencies are built.
