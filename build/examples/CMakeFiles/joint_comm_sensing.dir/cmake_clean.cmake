file(REMOVE_RECURSE
  "CMakeFiles/joint_comm_sensing.dir/joint_comm_sensing.cpp.o"
  "CMakeFiles/joint_comm_sensing.dir/joint_comm_sensing.cpp.o.d"
  "joint_comm_sensing"
  "joint_comm_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joint_comm_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
