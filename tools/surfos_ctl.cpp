// surfos-ctl: command-line client for surfosd's wire protocol.
//
//   surfos-ctl [--socket PATH] COMMAND [ARGS...]
//
// Commands:
//   ping                         version negotiation round trip
//   submit APP [options]         queue a demand through admission
//   stop APP / resume APP        session control
//   status [--app A] [--site S]  session table
//   metrics                      fleet step counters from the last epoch
//   traces                       drain flight-recorder events (chrome JSON);
//                                pages with the kStreamTraces cursor until
//                                the buffer is exhausted
//   watch TOPIC [options]        subscribe to metrics|traces|health and
//                                print server-pushed events until --count
//                                events arrive (or forever)
//   snapshot / restore           daemon state to/from its snapshot path
//   set-knob NAME VALUE          hot-reload a SURFOS_* knob
//   knobs                        list knobs and current overrides
//   shutdown                     stop the daemon
//
// Exits 0 on success, 1 when the daemon answers kError (code + message go
// to stderr), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "broker/demand.hpp"
#include "daemon/client.hpp"
#include "daemon/subscription.hpp"
#include "daemon/tags.hpp"
#include "orch/task.hpp"
#include "proto/serialize.hpp"
#include "proto/wire.hpp"
#include "telemetry/recorder.hpp"

namespace {

using surfos::daemon::Client;
namespace tag = surfos::daemon::tag;
namespace proto = surfos::proto;

int usage() {
  std::fprintf(
      stderr,
      "usage: surfos-ctl [--socket PATH] COMMAND [ARGS...]\n"
      "  ping | status [--app A] [--site S] | metrics | traces\n"
      "  watch metrics|traces|health [--interval EPOCHS] [--count N]\n"
      "        [--site S] [--prefix P]\n"
      "  submit APP [--site S] [--class C] [--endpoint E] [--region R]\n"
      "         [--throughput MBPS] [--latency MS] [--sensing] [--security]\n"
      "         [--power] [--priority background|normal|interactive|critical]\n"
      "  stop APP [--site S] | resume APP [--site S]\n"
      "  snapshot | restore | set-knob NAME VALUE | knobs | shutdown\n");
  return 2;
}

std::optional<surfos::broker::AppClass> parse_app_class(
    const std::string& name) {
  using surfos::broker::AppClass;
  for (const AppClass c :
       {AppClass::kVrGaming, AppClass::kVideoStreaming,
        AppClass::kVideoConference, AppClass::kFileTransfer,
        AppClass::kSmartHome, AppClass::kSensitiveData,
        AppClass::kWirelessCharging}) {
    if (name == surfos::broker::to_string(c)) return c;
  }
  return std::nullopt;
}

std::optional<surfos::orch::Priority> parse_priority(const std::string& name) {
  if (name == "background") return surfos::orch::kPriorityBackground;
  if (name == "normal") return surfos::orch::kPriorityNormal;
  if (name == "interactive") return surfos::orch::kPriorityInteractive;
  if (name == "critical") return surfos::orch::kPriorityCritical;
  return std::nullopt;
}

/// Prints a kError reply's code + message; returns 1 (the exit code).
int report_error(const proto::WireFrame& reply) {
  std::uint32_t code = 0;
  std::string message;
  proto::TlvReader r(reply.payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kErrorCode) {
      code = proto::tlv_u32(*tlv).value_or(0);
    }
    if (tlv->tag == tag::kErrorMessage) message = proto::tlv_string(*tlv);
  }
  std::fprintf(stderr, "error %u (%s): %s\n", code,
               surfos::to_string(static_cast<surfos::ErrorCode>(code)),
               message.c_str());
  return 1;
}

int run(Client& client, proto::MsgType type,
        const std::vector<std::uint8_t>& payload,
        const std::function<void(const proto::WireFrame&)>& on_reply) {
  auto reply = client.call(type, payload);
  if (!reply.ok()) {
    std::fprintf(stderr, "surfos-ctl: %s\n", reply.error().message.c_str());
    return 1;
  }
  if (reply.value().type == proto::MsgType::kError) {
    return report_error(reply.value());
  }
  on_reply(reply.value());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/surfosd.sock";
  if (const char* env = std::getenv("SURFOS_SOCKET")) socket_path = env;
  int at = 1;
  if (at + 1 < argc && std::strcmp(argv[at], "--socket") == 0) {
    socket_path = argv[at + 1];
    at += 2;
  }
  if (at >= argc) return usage();
  const std::string command = argv[at++];

  // Per-command option parsing (shared flags).
  std::string app_id;
  std::string site_id;
  std::string endpoint_id;
  std::string region_id;
  std::string app_class = "file-transfer";
  std::optional<double> throughput;
  std::optional<double> latency;
  bool sensing = false, security = false, power = false;
  std::optional<surfos::orch::Priority> priority;
  std::string prefix;
  long interval = 1;
  long count = 0;  // 0 = stream forever
  std::vector<std::string> positional;
  for (; at < argc; ++at) {
    const std::string arg = argv[at];
    const bool has_value = at + 1 < argc;
    if (arg == "--site" && has_value) {
      site_id = argv[++at];
    } else if (arg == "--prefix" && has_value) {
      prefix = argv[++at];
    } else if (arg == "--interval" && has_value) {
      interval = std::atol(argv[++at]);
      if (interval < 1) return usage();
    } else if (arg == "--count" && has_value) {
      count = std::atol(argv[++at]);
      if (count < 0) return usage();
    } else if (arg == "--app" && has_value) {
      app_id = argv[++at];
    } else if (arg == "--endpoint" && has_value) {
      endpoint_id = argv[++at];
    } else if (arg == "--region" && has_value) {
      region_id = argv[++at];
    } else if (arg == "--class" && has_value) {
      app_class = argv[++at];
    } else if (arg == "--throughput" && has_value) {
      throughput = std::atof(argv[++at]);
    } else if (arg == "--latency" && has_value) {
      latency = std::atof(argv[++at]);
    } else if (arg == "--sensing") {
      sensing = true;
    } else if (arg == "--security") {
      security = true;
    } else if (arg == "--power") {
      power = true;
    } else if (arg == "--priority" && has_value) {
      priority = parse_priority(argv[++at]);
      if (!priority) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      positional.push_back(arg);
    }
  }

  auto connected = Client::connect(socket_path);
  if (!connected.ok()) {
    std::fprintf(stderr, "surfos-ctl: %s\n",
                 connected.error().message.c_str());
    return 1;
  }
  Client client = std::move(connected.value());

  std::vector<std::uint8_t> payload;
  proto::TlvWriter w(payload);

  if (command == "ping") {
    w.put_u16(tag::kMaxVersion, proto::kProtoVersion);
    return run(client, proto::MsgType::kHello, payload,
               [](const proto::WireFrame& reply) {
                 std::uint16_t version = 0;
                 std::string server;
                 proto::TlvReader r(reply.payload);
                 while (const auto tlv = r.next()) {
                   if (tlv->tag == tag::kChosenVersion) {
                     version = proto::tlv_u16(*tlv).value_or(0);
                   }
                   if (tlv->tag == tag::kServerName) {
                     server = proto::tlv_string(*tlv);
                   }
                 }
                 std::printf("%s speaks protocol v%u\n", server.c_str(),
                             version);
               });
  }

  if (command == "submit") {
    if (positional.size() != 1) return usage();
    const auto parsed_class = parse_app_class(app_class);
    if (!parsed_class) {
      std::fprintf(stderr, "surfos-ctl: unknown app class: %s\n",
                   app_class.c_str());
      return 2;
    }
    surfos::broker::AppDemand demand = surfos::broker::demand_profile(
        *parsed_class, endpoint_id, region_id);
    if (throughput) demand.throughput_mbps = throughput;
    if (latency) demand.max_latency_ms = latency;
    if (sensing) demand.needs_sensing = true;
    if (security) demand.needs_security = true;
    if (power) demand.needs_power = true;
    w.put_string(tag::kAppId, positional[0]);
    if (!site_id.empty()) w.put_string(tag::kSiteId, site_id);
    w.put_bytes(tag::kDemand, proto::to_wire(demand));
    if (priority) {
      w.put_u64(tag::kPriority, static_cast<std::uint64_t>(*priority));
    }
    return run(client, proto::MsgType::kSubmitDemand, payload,
               [&](const proto::WireFrame& reply) {
                 std::uint64_t depth = 0;
                 proto::TlvReader r(reply.payload);
                 while (const auto tlv = r.next()) {
                   if (tlv->tag == tag::kQueueDepth) {
                     depth = proto::tlv_u64(*tlv).value_or(0);
                   }
                 }
                 std::printf("queued %s (admission depth %llu)\n",
                             positional[0].c_str(),
                             static_cast<unsigned long long>(depth));
               });
  }

  if (command == "stop" || command == "resume") {
    if (positional.size() != 1) return usage();
    w.put_string(tag::kAppId, positional[0]);
    if (!site_id.empty()) w.put_string(tag::kSiteId, site_id);
    return run(client,
               command == "stop" ? proto::MsgType::kStopApp
                                 : proto::MsgType::kResumeApp,
               payload, [&](const proto::WireFrame&) {
                 std::printf("%s: %s\n", command.c_str(),
                             positional[0].c_str());
               });
  }

  if (command == "status") {
    if (!app_id.empty()) w.put_string(tag::kAppId, app_id);
    if (!site_id.empty()) w.put_string(tag::kSiteId, site_id);
    return run(client, proto::MsgType::kGetStatus, payload,
               [](const proto::WireFrame& reply) {
                 proto::TlvReader r(reply.payload);
                 std::uint64_t depth = 0, epochs = 0;
                 std::size_t sessions = 0;
                 while (const auto tlv = r.next()) {
                   if (tlv->tag == tag::kQueueDepth) {
                     depth = proto::tlv_u64(*tlv).value_or(0);
                   } else if (tlv->tag == tag::kStatusEpochs) {
                     epochs = proto::tlv_u64(*tlv).value_or(0);
                   } else if (tlv->tag == tag::kSession) {
                     ++sessions;
                     std::string app, site;
                     bool running = false, satisfied = false;
                     std::uint64_t trace = 0, total = 0, met = 0;
                     proto::TlvReader n(tlv->value);
                     while (const auto field = n.next()) {
                       switch (field->tag) {
                         case tag::kSessionApp:
                           app = proto::tlv_string(*field);
                           break;
                         case tag::kSessionSite:
                           site = proto::tlv_string(*field);
                           break;
                         case tag::kSessionRunning:
                           running = proto::tlv_u8(*field).value_or(0) != 0;
                           break;
                         case tag::kSessionTrace:
                           trace = proto::tlv_u64(*field).value_or(0);
                           break;
                         case tag::kSessionSatisfied:
                           satisfied = proto::tlv_u8(*field).value_or(0) != 0;
                           break;
                         case tag::kSessionTasksTotal:
                           total = proto::tlv_u64(*field).value_or(0);
                           break;
                         case tag::kSessionTasksMet:
                           met = proto::tlv_u64(*field).value_or(0);
                           break;
                         default: break;
                       }
                     }
                     std::printf(
                         "%-16s %-8s %-8s %-11s goals %llu/%llu trace %016llx\n",
                         app.c_str(), site.c_str(),
                         running ? "running" : "stopped",
                         satisfied ? "satisfied" : "unsatisfied",
                         static_cast<unsigned long long>(met),
                         static_cast<unsigned long long>(total),
                         static_cast<unsigned long long>(trace));
                   }
                 }
                 std::printf("%zu session(s), %llu queued, epoch %llu\n",
                             sessions,
                             static_cast<unsigned long long>(depth),
                             static_cast<unsigned long long>(epochs));
               });
  }

  if (command == "metrics") {
    return run(client, proto::MsgType::kGetMetrics, payload,
               [](const proto::WireFrame& reply) {
                 proto::TlvReader r(reply.payload);
                 std::uint64_t epochs = 0, rebuilds = 0, requests = 0;
                 std::uint64_t pre_hits = 0, pre_misses = 0, pre_bytes = 0,
                               pre_evictions = 0;
                 bool have_precompute = false;
                 double epoch_ms = 0.0;
                 surfos::FleetReport report;
                 bool have_report = false;
                 while (const auto tlv = r.next()) {
                   switch (tlv->tag) {
                     case tag::kReport:
                       have_report =
                           proto::from_wire(tlv->value, report).ok();
                       break;
                     case tag::kEpochs:
                       epochs = proto::tlv_u64(*tlv).value_or(0);
                       break;
                     case tag::kRebuilds:
                       rebuilds = proto::tlv_u64(*tlv).value_or(0);
                       break;
                     case tag::kLastEpochMs:
                       epoch_ms = proto::tlv_f64(*tlv).value_or(0.0);
                       break;
                     case tag::kRequests:
                       requests = proto::tlv_u64(*tlv).value_or(0);
                       break;
                     case tag::kPrecomputeHits:
                       pre_hits = proto::tlv_u64(*tlv).value_or(0);
                       have_precompute = true;
                       break;
                     case tag::kPrecomputeMisses:
                       pre_misses = proto::tlv_u64(*tlv).value_or(0);
                       break;
                     case tag::kPrecomputeBytes:
                       pre_bytes = proto::tlv_u64(*tlv).value_or(0);
                       break;
                     case tag::kPrecomputeEvictions:
                       pre_evictions = proto::tlv_u64(*tlv).value_or(0);
                       break;
                     default: break;
                   }
                 }
                 std::printf(
                     "epochs %llu (last %.2f ms), env rebuilds %llu, "
                     "requests %llu\n",
                     static_cast<unsigned long long>(epochs), epoch_ms,
                     static_cast<unsigned long long>(rebuilds),
                     static_cast<unsigned long long>(requests));
                 if (have_precompute) {
                   std::printf(
                       "precompute: %llu hit(s), %llu miss(es), "
                       "%llu eviction(s), %.1f MiB resident\n",
                       static_cast<unsigned long long>(pre_hits),
                       static_cast<unsigned long long>(pre_misses),
                       static_cast<unsigned long long>(pre_evictions),
                       static_cast<double>(pre_bytes) / (1024.0 * 1024.0));
                 }
                 if (have_report) {
                   std::printf(
                       "last step: %zu site(s), %zu assignment(s), "
                       "%zu optimization(s), %zu starved\n",
                       report.sites.size(), report.total_assignments,
                       report.total_optimizations, report.total_starved);
                 }
               });
  }

  if (command == "traces") {
    // Cursor drain loop: page through the flight recorder until the daemon
    // reports kTraceDone, then emit one chrome JSON document. Wire names
    // are interned in a deque so the rebuilt TraceEvents can point at them.
    std::deque<std::string> names;
    std::vector<surfos::telemetry::TraceEvent> events;
    std::uint64_t cursor_ts = 0, cursor_span = 0;
    bool done = false;
    while (!done) {
      std::vector<std::uint8_t> page;
      proto::TlvWriter pw(page);
      pw.put_u64(tag::kTraceCursorTs, cursor_ts);
      pw.put_u64(tag::kTraceCursorSpan, cursor_span);
      pw.put_u32(tag::kTraceLimit, 1024);
      auto reply = client.call(proto::MsgType::kStreamTraces, page);
      if (!reply.ok()) {
        std::fprintf(stderr, "surfos-ctl: %s\n",
                     reply.error().message.c_str());
        return 1;
      }
      if (reply.value().type == proto::MsgType::kError) {
        return report_error(reply.value());
      }
      proto::TlvReader r(reply.value().payload);
      while (const auto tlv = r.next()) {
        switch (tlv->tag) {
          case tag::kTraceEvent: {
            surfos::telemetry::TraceEvent ev;
            proto::TlvReader n(tlv->value);
            while (const auto field = n.next()) {
              switch (field->tag) {
                case tag::kEvTs:
                  ev.ts_ns = proto::tlv_u64(*field).value_or(0);
                  break;
                case tag::kEvDur:
                  ev.dur_ns = proto::tlv_u64(*field).value_or(0);
                  break;
                case tag::kEvTrace:
                  ev.trace_id = proto::tlv_u64(*field).value_or(0);
                  break;
                case tag::kEvSpan:
                  ev.span_id = proto::tlv_u64(*field).value_or(0);
                  break;
                case tag::kEvParent:
                  ev.parent_span_id = proto::tlv_u64(*field).value_or(0);
                  break;
                case tag::kEvName:
                  names.push_back(proto::tlv_string(*field));
                  ev.name = names.back().c_str();
                  break;
                case tag::kEvKind:
                  ev.kind = static_cast<surfos::telemetry::TraceEvent::Kind>(
                      proto::tlv_u8(*field).value_or(0));
                  break;
                case tag::kEvArg:
                  ev.arg = proto::tlv_u64(*field).value_or(0);
                  break;
                case tag::kEvTid:
                  ev.thread_index = proto::tlv_u32(*field).value_or(0);
                  break;
                default: break;
              }
            }
            events.push_back(ev);
            break;
          }
          case tag::kTraceNextTs:
            cursor_ts = proto::tlv_u64(*tlv).value_or(cursor_ts);
            break;
          case tag::kTraceNextSpan:
            cursor_span = proto::tlv_u64(*tlv).value_or(cursor_span);
            break;
          case tag::kTraceDone:
            done = proto::tlv_u8(*tlv).value_or(0) != 0;
            break;
          default: break;
        }
      }
    }
    std::printf("%s", surfos::telemetry::chrome_trace_json(events).c_str());
    return 0;
  }

  if (command == "watch") {
    if (positional.size() != 1) return usage();
    const std::uint8_t topic = surfos::daemon::parse_sub_topic(positional[0]);
    if (topic == 0) {
      std::fprintf(stderr, "surfos-ctl: unknown topic: %s\n",
                   positional[0].c_str());
      return 2;
    }
    w.put_u8(tag::kSubTopic, topic);
    w.put_u32(tag::kSubInterval, static_cast<std::uint32_t>(interval));
    if (!site_id.empty()) w.put_string(tag::kSubSite, site_id);
    if (!prefix.empty()) w.put_string(tag::kSubPrefix, prefix);
    auto ack = client.call(proto::MsgType::kSubscribe, payload);
    if (!ack.ok()) {
      std::fprintf(stderr, "surfos-ctl: %s\n", ack.error().message.c_str());
      return 1;
    }
    if (ack.value().type == proto::MsgType::kError) {
      return report_error(ack.value());
    }
    std::uint64_t sub_id = 0;
    {
      proto::TlvReader r(ack.value().payload);
      while (const auto tlv = r.next()) {
        if (tlv->tag == tag::kSubId) {
          sub_id = proto::tlv_u64(*tlv).value_or(0);
        }
      }
    }
    std::fprintf(stderr, "subscribed %s id=%llu interval=%ld\n",
                 positional[0].c_str(),
                 static_cast<unsigned long long>(sub_id), interval);
    long seen = 0;
    while (count == 0 || seen < count) {
      auto frame = client.recv();
      if (!frame.ok()) {
        std::fprintf(stderr, "surfos-ctl: %s\n",
                     frame.error().message.c_str());
        return 1;
      }
      if (frame.value().type != proto::MsgType::kEvent) continue;
      std::uint64_t epoch = 0, seq = 0, dropped = 0;
      bool baseline = false;
      // One line per event, `key=value` fields — greppable from scripts —
      // followed by indented per-record lines.
      std::vector<std::string> lines;
      proto::TlvReader r(frame.value().payload);
      while (const auto tlv = r.next()) {
        switch (tlv->tag) {
          case tag::kEventEpoch:
            epoch = proto::tlv_u64(*tlv).value_or(0);
            break;
          case tag::kEventSeq:
            seq = proto::tlv_u64(*tlv).value_or(0);
            break;
          case tag::kDroppedEvents:
            dropped = proto::tlv_u64(*tlv).value_or(0);
            break;
          case tag::kEventBaseline:
            baseline = proto::tlv_u8(*tlv).value_or(0) != 0;
            break;
          case tag::kEventCounter:
          case tag::kEventGauge: {
            std::string name;
            std::uint64_t u64 = 0;
            double f64 = 0.0;
            const bool is_gauge = tlv->tag == tag::kEventGauge;
            proto::TlvReader n(tlv->value);
            while (const auto field = n.next()) {
              if (field->tag == tag::kMetricName) {
                name = proto::tlv_string(*field);
              } else if (field->tag == tag::kMetricU64) {
                u64 = proto::tlv_u64(*field).value_or(0);
              } else if (field->tag == tag::kMetricF64) {
                f64 = proto::tlv_f64(*field).value_or(0.0);
              }
            }
            char line[256];
            if (is_gauge) {
              std::snprintf(line, sizeof line, "  gauge %s=%g", name.c_str(),
                            f64);
            } else {
              std::snprintf(line, sizeof line, "  counter %s=%llu",
                            name.c_str(),
                            static_cast<unsigned long long>(u64));
            }
            lines.push_back(line);
            break;
          }
          case tag::kEventTrace: {
            std::string name;
            std::uint64_t ts = 0, dur = 0;
            proto::TlvReader n(tlv->value);
            while (const auto field = n.next()) {
              if (field->tag == tag::kEvName) {
                name = proto::tlv_string(*field);
              } else if (field->tag == tag::kEvTs) {
                ts = proto::tlv_u64(*field).value_or(0);
              } else if (field->tag == tag::kEvDur) {
                dur = proto::tlv_u64(*field).value_or(0);
              }
            }
            char line[256];
            std::snprintf(line, sizeof line,
                          "  trace %s ts_ns=%llu dur_ns=%llu", name.c_str(),
                          static_cast<unsigned long long>(ts),
                          static_cast<unsigned long long>(dur));
            lines.push_back(line);
            break;
          }
          case tag::kEventSiteHealth: {
            std::string site, reason;
            std::uint8_t state = 0;
            std::uint64_t epochs_in = 0;
            proto::TlvReader n(tlv->value);
            while (const auto field = n.next()) {
              if (field->tag == tag::kHealthSite) {
                site = proto::tlv_string(*field);
              } else if (field->tag == tag::kHealthState) {
                state = proto::tlv_u8(*field).value_or(0);
              } else if (field->tag == tag::kHealthEpochs) {
                epochs_in = proto::tlv_u64(*field).value_or(0);
              } else if (field->tag == tag::kHealthReason) {
                reason = proto::tlv_string(*field);
              }
            }
            char line[320];
            std::snprintf(
                line, sizeof line, "  site %s state=%s epochs=%llu%s%s",
                site.c_str(),
                surfos::daemon::slo_state_name(
                    static_cast<surfos::daemon::SloState>(state)),
                static_cast<unsigned long long>(epochs_in),
                reason.empty() ? "" : " reason=", reason.c_str());
            lines.push_back(line);
            break;
          }
          default: break;
        }
      }
      std::printf("event topic=%s epoch=%llu seq=%llu dropped=%llu%s\n",
                  positional[0].c_str(),
                  static_cast<unsigned long long>(epoch),
                  static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(dropped),
                  baseline ? " baseline=1" : "");
      for (const std::string& line : lines) {
        std::printf("%s\n", line.c_str());
      }
      std::fflush(stdout);
      ++seen;
    }
    return 0;
  }

  if (command == "snapshot" || command == "restore") {
    return run(client,
               command == "snapshot" ? proto::MsgType::kSnapshot
                                     : proto::MsgType::kRestore,
               payload, [&](const proto::WireFrame& reply) {
                 std::string path;
                 proto::TlvReader r(reply.payload);
                 while (const auto tlv = r.next()) {
                   if (tlv->tag == tag::kPath) {
                     path = proto::tlv_string(*tlv);
                   }
                 }
                 if (path.empty()) {
                   std::printf("%s: ok\n", command.c_str());
                 } else {
                   std::printf("%s: %s\n", command.c_str(), path.c_str());
                 }
               });
  }

  if (command == "set-knob") {
    if (positional.size() != 2) return usage();
    w.put_string(tag::kKnobName, positional[0]);
    w.put_u64(tag::kKnobValue,
              static_cast<std::uint64_t>(std::atoll(positional[1].c_str())));
    return run(client, proto::MsgType::kSetKnob, payload,
               [&](const proto::WireFrame&) {
                 std::printf("%s = %s\n", positional[0].c_str(),
                             positional[1].c_str());
               });
  }

  if (command == "knobs") {
    return run(client, proto::MsgType::kGetKnobs, payload,
               [](const proto::WireFrame& reply) {
                 proto::TlvReader r(reply.payload);
                 while (const auto tlv = r.next()) {
                   if (tlv->tag != tag::kKnob) continue;
                   std::string name, doc;
                   bool has_value = false;
                   std::uint64_t value = 0;
                   proto::TlvReader n(tlv->value);
                   while (const auto field = n.next()) {
                     switch (field->tag) {
                       case tag::kKnobName:
                         name = proto::tlv_string(*field);
                         break;
                       case tag::kKnobHasValue:
                         has_value = proto::tlv_u8(*field).value_or(0) != 0;
                         break;
                       case tag::kKnobValue:
                         value = proto::tlv_u64(*field).value_or(0);
                         break;
                       case tag::kKnobDoc:
                         doc = proto::tlv_string(*field);
                         break;
                       default: break;
                     }
                   }
                   if (has_value) {
                     std::printf("%-22s %-10llu %s\n", name.c_str(),
                                 static_cast<unsigned long long>(value),
                                 doc.c_str());
                   } else {
                     std::printf("%-22s %-10s %s\n", name.c_str(), "(default)",
                                 doc.c_str());
                   }
                 }
               });
  }

  if (command == "shutdown") {
    return run(client, proto::MsgType::kShutdown, payload,
               [](const proto::WireFrame&) { std::printf("shutdown: ok\n"); });
  }

  return usage();
}
