// surfos-status: one-shot operator dashboard for a running surfosd.
//
//   surfos-status [--socket PATH]
//
// Combines get_status and get_metrics into a single human-readable view:
// daemon health (epochs, epoch wall time, environment rebuilds, requests),
// the per-step fleet counters, the SLO watchdog verdicts, and the session
// table.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/slo.hpp"
#include "daemon/tags.hpp"
#include "proto/serialize.hpp"
#include "proto/wire.hpp"

namespace {

namespace tag = surfos::daemon::tag;
namespace proto = surfos::proto;

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/surfosd.sock";
  if (const char* env = std::getenv("SURFOS_SOCKET")) socket_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: surfos-status [--socket PATH]\n");
      return 2;
    }
  }

  auto connected = surfos::daemon::Client::connect(socket_path);
  if (!connected.ok()) {
    std::fprintf(stderr, "surfos-status: %s\n",
                 connected.error().message.c_str());
    return 1;
  }
  surfos::daemon::Client client = std::move(connected.value());

  const auto metrics = client.call(proto::MsgType::kGetMetrics, {});
  if (!metrics.ok()) {
    std::fprintf(stderr, "surfos-status: %s\n",
                 metrics.error().message.c_str());
    return 1;
  }
  std::uint64_t epochs = 0, rebuilds = 0, requests = 0;
  double epoch_ms = 0.0;
  surfos::FleetReport report;
  bool have_report = false;
  {
    proto::TlvReader r(metrics.value().payload);
    while (const auto tlv = r.next()) {
      switch (tlv->tag) {
        case tag::kReport:
          have_report = proto::from_wire(tlv->value, report).ok();
          break;
        case tag::kEpochs: epochs = proto::tlv_u64(*tlv).value_or(0); break;
        case tag::kRebuilds:
          rebuilds = proto::tlv_u64(*tlv).value_or(0);
          break;
        case tag::kLastEpochMs:
          epoch_ms = proto::tlv_f64(*tlv).value_or(0.0);
          break;
        case tag::kRequests:
          requests = proto::tlv_u64(*tlv).value_or(0);
          break;
        default: break;
      }
    }
  }
  std::printf("surfosd @ %s\n", socket_path.c_str());
  std::printf("  epochs    %llu (last %.2f ms)\n",
              static_cast<unsigned long long>(epochs), epoch_ms);
  std::printf("  rebuilds  %llu\n", static_cast<unsigned long long>(rebuilds));
  std::printf("  requests  %llu\n", static_cast<unsigned long long>(requests));
  if (have_report) {
    std::printf("  last step %zu site(s): %zu assignment(s), "
                "%zu optimization(s), %zu starved\n",
                report.sites.size(), report.total_assignments,
                report.total_optimizations, report.total_starved);
  }

  const auto status = client.call(proto::MsgType::kGetStatus, {});
  if (!status.ok()) {
    std::fprintf(stderr, "surfos-status: %s\n",
                 status.error().message.c_str());
    return 1;
  }
  struct HealthRow {
    std::string site, reason;
    std::uint8_t state = 0;
    std::uint64_t epochs_in = 0;
  };
  std::vector<HealthRow> health;
  std::uint8_t fleet_state = 0;
  std::printf("sessions:\n");
  std::size_t sessions = 0;
  std::uint64_t depth = 0;
  proto::TlvReader r(status.value().payload);
  while (const auto tlv = r.next()) {
    if (tlv->tag == tag::kQueueDepth) {
      depth = proto::tlv_u64(*tlv).value_or(0);
      continue;
    }
    if (tlv->tag == tag::kFleetHealth) {
      fleet_state = proto::tlv_u8(*tlv).value_or(0);
      continue;
    }
    if (tlv->tag == tag::kSiteHealth) {
      HealthRow row;
      proto::TlvReader n(tlv->value);
      while (const auto field = n.next()) {
        switch (field->tag) {
          case tag::kHealthSite: row.site = proto::tlv_string(*field); break;
          case tag::kHealthState:
            row.state = proto::tlv_u8(*field).value_or(0);
            break;
          case tag::kHealthEpochs:
            row.epochs_in = proto::tlv_u64(*field).value_or(0);
            break;
          case tag::kHealthReason:
            row.reason = proto::tlv_string(*field);
            break;
          default: break;
        }
      }
      health.push_back(std::move(row));
      continue;
    }
    if (tlv->tag != tag::kSession) continue;
    ++sessions;
    std::string app, site;
    bool running = false, satisfied = false;
    std::uint64_t total = 0, met = 0;
    proto::TlvReader n(tlv->value);
    while (const auto field = n.next()) {
      switch (field->tag) {
        case tag::kSessionApp: app = proto::tlv_string(*field); break;
        case tag::kSessionSite: site = proto::tlv_string(*field); break;
        case tag::kSessionRunning:
          running = proto::tlv_u8(*field).value_or(0) != 0;
          break;
        case tag::kSessionSatisfied:
          satisfied = proto::tlv_u8(*field).value_or(0) != 0;
          break;
        case tag::kSessionTasksTotal:
          total = proto::tlv_u64(*field).value_or(0);
          break;
        case tag::kSessionTasksMet:
          met = proto::tlv_u64(*field).value_or(0);
          break;
        default: break;
      }
    }
    std::printf("  %-16s %-8s %-8s %-11s goals %llu/%llu\n", app.c_str(),
                site.c_str(), running ? "running" : "stopped",
                satisfied ? "satisfied" : "unsatisfied",
                static_cast<unsigned long long>(met),
                static_cast<unsigned long long>(total));
  }
  if (sessions == 0) std::printf("  (none)\n");
  std::printf("  %llu demand(s) queued for admission\n",
              static_cast<unsigned long long>(depth));
  std::printf("slo: fleet %s\n",
              surfos::daemon::slo_state_name(
                  static_cast<surfos::daemon::SloState>(fleet_state)));
  for (const auto& row : health) {
    std::printf("  %-8s %-10s %llu epoch(s)%s%s\n", row.site.c_str(),
                surfos::daemon::slo_state_name(
                    static_cast<surfos::daemon::SloState>(row.state)),
                static_cast<unsigned long long>(row.epochs_in),
                row.reason.empty() ? "" : "  ", row.reason.c_str());
  }
  return 0;
}
