// surfosd: the SurfOS control daemon (see src/daemon/daemon.hpp).
//
//   surfosd --socket /run/surfos.sock --snapshot /var/lib/surfos.snap \
//           [--sites N] [--grid N] [--epoch-ms MS] [--restore]
//
// SIGTERM/SIGINT write a snapshot (when --snapshot is set) before shutting
// down; a restart with --restore resumes every session under its original
// trace id and re-submits queued demands through admission. Knobs come from
// the SURFOS_* environment once at startup and are hot-reloadable afterwards
// via `surfos-ctl set-knob`.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/config.hpp"
#include "daemon/daemon.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 't';
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--snapshot PATH] [--sites N]\n"
               "          [--grid N] [--epoch-ms MS] [--restore]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  surfos::daemon::DaemonOptions options;
  options.socket_path = "/tmp/surfosd.sock";
  bool restore = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--socket" && has_value) {
      options.socket_path = argv[++i];
    } else if (arg == "--snapshot" && has_value) {
      options.snapshot_path = argv[++i];
    } else if (arg == "--sites" && has_value) {
      options.sites = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--grid" && has_value) {
      options.grid_n = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--epoch-ms" && has_value) {
      options.epoch_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--restore") {
      restore = true;
    } else {
      return usage(argv[0]);
    }
  }

  // One env capture before any thread exists; set-knob swaps copies in.
  surfos::core::install_config(surfos::core::Config::from_env());

  surfos::daemon::Daemon daemon(std::move(options));
  if (restore) {
    if (auto loaded = daemon.load_snapshot(); !loaded.ok()) {
      std::fprintf(stderr, "surfosd: restore failed: %s\n",
                   loaded.error().message.c_str());
      return 1;
    }
  }
  if (auto started = daemon.start(); !started.ok()) {
    std::fprintf(stderr, "surfosd: %s\n", started.error().message.c_str());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "surfosd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = on_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  // Exit on either a signal (pipe readable) or a wire-level shutdown
  // request (daemon.running() drops).
  bool signaled = false;
  while (daemon.running()) {
    pollfd p{g_signal_pipe[0], POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (r > 0 && (p.revents & POLLIN)) {
      signaled = true;
      break;
    }
  }

  if (signaled && !daemon.options().snapshot_path.empty()) {
    if (auto saved = daemon.save_snapshot(); !saved.ok()) {
      std::fprintf(stderr, "surfosd: snapshot on shutdown failed: %s\n",
                   saved.error().message.c_str());
    }
  }
  daemon.stop();
  return 0;
}
