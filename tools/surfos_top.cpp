// surfos-top: live terminal dashboard for a running surfosd.
//
//   surfos-top [--socket PATH] [--interval EPOCHS] [--frames N]
//
// Subscribes to all three streaming topics on one connection — metrics
// (delta-encoded counters/gauges), traces (new flight-recorder events), and
// health (per-site SLO watchdog verdicts) — and redraws an ANSI dashboard
// every metrics event: fleet counters, a sparkline of recent epoch wall
// times, the per-site health table with the SLO state column, and the
// per-epoch trace event rate.
//
// --frames N exits after N redraws (0 = run until the daemon goes away),
// which is how CI drives the dashboard without a TTY. The event stream is
// authoritative: surfos-top never polls.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/slo.hpp"
#include "daemon/subscription.hpp"
#include "daemon/tags.hpp"
#include "proto/wire.hpp"

namespace {

namespace tag = surfos::daemon::tag;
namespace proto = surfos::proto;
using surfos::daemon::Client;
using surfos::daemon::SloState;

struct HealthRow {
  SloState state = SloState::kHealthy;
  std::uint64_t epochs_in = 0;
  std::string reason;
};

struct Dashboard {
  std::uint64_t epoch = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::deque<double> epoch_ms;  ///< Sparkline history, newest last.
  double flush_us = 0.0;
  std::map<std::string, HealthRow> sites;
  std::uint64_t trace_events_last = 0;  ///< Trace records in the last event.
  std::uint64_t dropped = 0;            ///< Worst drop counter seen.
  std::uint64_t frames = 0;             ///< Redraws so far.
};

constexpr std::size_t kSparkWidth = 48;

/// Renders `values` (newest last) as a ▁▂▃▄▅▆▇█ sparkline scaled to the
/// window's max.
std::string sparkline(const std::deque<double>& values) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};
  double max = 0.0;
  for (const double v : values) max = v > max ? v : max;
  std::string out;
  for (const double v : values) {
    const double unit = max > 0.0 ? v / max : 0.0;
    int idx = static_cast<int>(unit * 7.999);
    if (idx < 0) idx = 0;
    if (idx > 7) idx = 7;
    out += kBars[idx];
  }
  return out;
}

void redraw(const Dashboard& d) {
  // Home + clear-to-end keeps the redraw flicker-free on real terminals and
  // harmless when stdout is a pipe.
  std::printf("\x1b[H\x1b[J");
  std::printf("surfos-top · epoch %llu · frame %llu\n",
              static_cast<unsigned long long>(d.epoch),
              static_cast<unsigned long long>(d.frames));
  const double last_ms = d.epoch_ms.empty() ? 0.0 : d.epoch_ms.back();
  std::printf("epoch %.2f ms  flush %.1f us  traces/epoch %llu  dropped %llu\n",
              last_ms, d.flush_us,
              static_cast<unsigned long long>(d.trace_events_last),
              static_cast<unsigned long long>(d.dropped));
  std::printf("latency %s\n", sparkline(d.epoch_ms).c_str());

  // Dedicated precompute-store line: shared-artifact traffic is the main
  // lever behind cold-start and endpoint-churn latency (PR 10).
  const auto count_of = [&d](const char* name) -> unsigned long long {
    const auto it = d.counters.find(name);
    return it == d.counters.end()
               ? 0ull
               : static_cast<unsigned long long>(it->second);
  };
  const auto bytes_it = d.gauges.find("sim.precompute.bytes");
  std::printf(
      "precompute hits %llu  misses %llu  evictions %llu  resident %.1f MiB\n",
      count_of("sim.precompute.hits"), count_of("sim.precompute.misses"),
      count_of("sim.precompute.evictions"),
      (bytes_it == d.gauges.end() ? 0.0 : bytes_it->second) /
          (1024.0 * 1024.0));

  std::printf("\nsites (%zu):\n", d.sites.size());
  std::printf("  %-12s %-10s %-8s %s\n", "SITE", "SLO", "EPOCHS", "REASON");
  for (const auto& [site, row] : d.sites) {
    std::printf("  %-12s %-10s %-8llu %s\n", site.c_str(),
                surfos::daemon::slo_state_name(row.state),
                static_cast<unsigned long long>(row.epochs_in),
                row.reason.c_str());
  }
  if (d.sites.empty()) std::printf("  (no health events yet)\n");

  std::printf("\ncounters (%zu):\n", d.counters.size());
  std::size_t shown = 0;
  for (const auto& [name, value] : d.counters) {
    if (++shown > 16) {
      std::printf("  … %zu more\n", d.counters.size() - 16);
      break;
    }
    std::printf("  %-40s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : d.gauges) {
    std::printf("  %-40s %g\n", name.c_str(), value);
  }
  std::fflush(stdout);
}

/// Applies one kEvent frame to the dashboard. Returns true when the frame
/// was a metrics event (the redraw trigger — one per epoch interval).
bool apply_event(const proto::WireFrame& frame, Dashboard& d) {
  std::uint8_t topic = 0;
  std::uint64_t epoch = 0, dropped = 0, traces = 0;
  bool baseline = false;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::optional<double> epoch_ms, flush_us;
  proto::TlvReader r(frame.payload);
  while (const auto tlv = r.next()) {
    switch (tlv->tag) {
      case tag::kSubTopic: topic = proto::tlv_u8(*tlv).value_or(0); break;
      case tag::kEventEpoch: epoch = proto::tlv_u64(*tlv).value_or(0); break;
      case tag::kDroppedEvents:
        dropped = proto::tlv_u64(*tlv).value_or(0);
        break;
      case tag::kEventBaseline:
        baseline = proto::tlv_u8(*tlv).value_or(0) != 0;
        break;
      case tag::kEventEpochMs:
        epoch_ms = proto::tlv_f64(*tlv).value_or(0.0);
        break;
      case tag::kEventFlushUs:
        flush_us = proto::tlv_f64(*tlv).value_or(0.0);
        break;
      case tag::kEventCounter:
      case tag::kEventGauge: {
        std::string name;
        std::uint64_t u64 = 0;
        double f64 = 0.0;
        proto::TlvReader n(tlv->value);
        while (const auto field = n.next()) {
          if (field->tag == tag::kMetricName) {
            name = proto::tlv_string(*field);
          } else if (field->tag == tag::kMetricU64) {
            u64 = proto::tlv_u64(*field).value_or(0);
          } else if (field->tag == tag::kMetricF64) {
            f64 = proto::tlv_f64(*field).value_or(0.0);
          }
        }
        if (tlv->tag == tag::kEventCounter) {
          counters.emplace_back(std::move(name), u64);
        } else {
          gauges.emplace_back(std::move(name), f64);
        }
        break;
      }
      case tag::kEventTrace: ++traces; break;
      case tag::kEventSiteHealth: {
        std::string site;
        HealthRow row;
        proto::TlvReader n(tlv->value);
        while (const auto field = n.next()) {
          if (field->tag == tag::kHealthSite) {
            site = proto::tlv_string(*field);
          } else if (field->tag == tag::kHealthState) {
            row.state = static_cast<SloState>(proto::tlv_u8(*field).value_or(0));
          } else if (field->tag == tag::kHealthEpochs) {
            row.epochs_in = proto::tlv_u64(*field).value_or(0);
          } else if (field->tag == tag::kHealthReason) {
            row.reason = proto::tlv_string(*field);
          }
        }
        if (!site.empty()) d.sites[site] = std::move(row);
        break;
      }
      default: break;
    }
  }

  if (dropped > d.dropped) d.dropped = dropped;
  if (epoch > d.epoch) d.epoch = epoch;
  const auto metrics_topic =
      static_cast<std::uint8_t>(surfos::daemon::SubTopic::kMetrics);
  const auto traces_topic =
      static_cast<std::uint8_t>(surfos::daemon::SubTopic::kTraces);
  if (topic == traces_topic) d.trace_events_last = traces;
  if (topic != metrics_topic) return false;

  if (baseline) {
    // A baseline is a full snapshot (sent after a drop): replace, don't
    // merge, so counters that disappeared don't linger.
    d.counters.clear();
    d.gauges.clear();
  }
  for (auto& [name, value] : counters) d.counters[name] = value;
  for (auto& [name, value] : gauges) d.gauges[name] = value;
  if (epoch_ms) {
    d.epoch_ms.push_back(*epoch_ms);
    while (d.epoch_ms.size() > kSparkWidth) d.epoch_ms.pop_front();
  }
  if (flush_us) d.flush_us = *flush_us;
  return true;
}

int subscribe(Client& client, surfos::daemon::SubTopic topic,
              std::uint32_t interval) {
  std::vector<std::uint8_t> payload;
  proto::TlvWriter w(payload);
  w.put_u8(tag::kSubTopic, static_cast<std::uint8_t>(topic));
  w.put_u32(tag::kSubInterval, interval);
  auto ack = client.call(proto::MsgType::kSubscribe, payload);
  if (!ack.ok()) {
    std::fprintf(stderr, "surfos-top: %s\n", ack.error().message.c_str());
    return 1;
  }
  if (ack.value().type == proto::MsgType::kError) {
    std::fprintf(stderr, "surfos-top: subscribe %s refused\n",
                 surfos::daemon::sub_topic_name(topic));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/surfosd.sock";
  if (const char* env = std::getenv("SURFOS_SOCKET")) socket_path = env;
  long interval = 1;
  long frames = 0;  // 0 = run until the stream ends
  for (int i = 1; i < argc; ++i) {
    const bool has_value = i + 1 < argc;
    if (std::strcmp(argv[i], "--socket") == 0 && has_value) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--interval") == 0 && has_value) {
      interval = std::atol(argv[++i]);
      if (interval < 1) interval = 1;
    } else if (std::strcmp(argv[i], "--frames") == 0 && has_value) {
      frames = std::atol(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: surfos-top [--socket PATH] [--interval EPOCHS] "
                   "[--frames N]\n");
      return 2;
    }
  }

  auto connected = Client::connect(socket_path);
  if (!connected.ok()) {
    std::fprintf(stderr, "surfos-top: %s\n", connected.error().message.c_str());
    return 1;
  }
  Client client = std::move(connected.value());

  using surfos::daemon::SubTopic;
  for (const SubTopic topic :
       {SubTopic::kMetrics, SubTopic::kTraces, SubTopic::kHealth}) {
    if (const int rc =
            subscribe(client, topic, static_cast<std::uint32_t>(interval));
        rc != 0) {
      return rc;
    }
  }

  Dashboard dash;
  while (frames == 0 || dash.frames < static_cast<std::uint64_t>(frames)) {
    auto frame = client.recv();
    if (!frame.ok()) {
      std::fprintf(stderr, "surfos-top: %s\n", frame.error().message.c_str());
      return dash.frames > 0 ? 0 : 1;
    }
    if (frame.value().type != proto::MsgType::kEvent) continue;
    if (apply_event(frame.value(), dash)) {
      ++dash.frames;
      redraw(dash);
    }
  }
  return 0;
}
