// Trace dump: run the full intent -> broker -> orchestrator -> optimizer ->
// driver pipeline with tracing on, then export the flight recorder two ways:
// a human table on stdout and Chrome trace-event JSON on disk (load it in
// chrome://tracing or https://ui.perfetto.dev).
//
//   $ ./tracedump [trace.json]
//
// Every row carries the trace id minted when the broker admitted the intent,
// so one user request can be followed across broker translation, scheduling,
// optimization (including thread-pool workers), and HAL config writes.
#include <cstdio>
#include <string>

#include "core/surfos.hpp"
#include "sim/floorplan.hpp"
#include "telemetry/telemetry.hpp"

using namespace surfos;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "trace.json";

  // Tracing is off by default (SURFOS_TRACE); this example is about tracing,
  // so switch it on and arm the crash hooks: if anything below faults, the
  // ring is dumped to tracedump_crash.json before the process dies.
  telemetry::set_trace_enabled(true);
  telemetry::Recorder::install_crash_handlers("tracedump_crash.json");

  sim::CoverageRoomScenario scene = sim::make_coverage_room(6);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 20,
                          20, "room-surface");
  os.register_endpoint("VR_headset", hal::EndpointKind::kClient,
                       {1.6, 2.0, 1.2});
  os.register_endpoint("phone", hal::EndpointKind::kClient, {2.2, 1.2, 1.0});

  // Two independent intents -> two trace ids in the same recording.
  os.broker().handle_utterance("I want to start VR gaming in this room.");
  os.broker().handle_utterance("please charge my phone");
  const orch::StepReport report = os.step();

  std::printf("%zu assignment(s) ran; per-assignment trace ids:\n",
              report.assignment_count);
  for (const telemetry::TraceId id : report.trace.trace_ids) {
    std::printf("  %016llx\n", static_cast<unsigned long long>(id));
  }
  std::printf("\n%s\n", telemetry::trace_table().c_str());

  const bool ok = telemetry::Recorder::instance().dump(out_path);
  if (!ok) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%llu events recorded, %llu overwritten)\n",
              out_path.c_str(),
              static_cast<unsigned long long>(
                  telemetry::Recorder::instance().recorded()),
              static_cast<unsigned long long>(
                  telemetry::Recorder::instance().dropped()));
  return 0;
}
