// Deployment planner example (paper Section 5's design + deployment
// automation): given only a floor plan, an AP, and a target region, SurfOS
// proposes where to mount surfaces, which catalog design to use, installs
// the winners, and verifies the delivered coverage end to end.
#include <cstdio>

#include "core/surfos.hpp"
#include "orch/placement.hpp"
#include "sim/floorplan.hpp"
#include "util/stats.hpp"

using namespace surfos;

int main() {
  // The 3.5 m room: the AP sits in the corridor, the room needs coverage.
  sim::CoverageRoomScenario scene = sim::make_coverage_room(8);
  const geom::SampleGrid region(0.4, 3.1, 0.4, 3.1, 1.0, 6, 6);

  // 1. Candidate mounts along the room's walls.
  const auto candidates =
      orch::wall_mounts(0.05, 3.45, 0.05, 3.45, 1.8, 0.8);
  std::printf("Evaluating %zu candidate wall mounts...\n", candidates.size());

  // 2. Rank them with the channel simulator; place two surfaces greedily.
  orch::PlacementOptions options;
  options.rows = 16;
  options.cols = 16;
  options.surfaces_to_place = 2;
  const orch::PlacementPlan plan =
      orch::plan_placement(*scene.environment, scene.ap(), scene.band,
                           scene.budget, candidates, region, options);

  std::printf("Top candidates by achievable median SNR:\n");
  for (std::size_t i = 0; i < plan.ranking.size() && i < 5; ++i) {
    const auto& score = plan.ranking[i];
    std::printf("  %-10s median %.1f dB, p10 %.1f dB\n",
                candidates[score.index].label.c_str(), score.median_snr_db,
                score.p10_snr_db);
  }
  std::printf("Greedy selection for 2 surfaces: ");
  for (const std::size_t index : plan.selected) {
    std::printf("%s ", candidates[index].label.c_str());
  }
  std::printf("(joint median %.1f dB)\n\n", plan.selected_median_snr_db);

  // 3. Install the selected mounts with a catalog design and verify through
  //    the full OS stack.
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  const surface::CatalogEntry* design = catalog.find("NR-Surface");
  for (std::size_t k = 0; k < plan.selected.size(); ++k) {
    os.install_programmable(*design, candidates[plan.selected[k]].pose, 16, 16,
                            candidates[plan.selected[k]].label);
  }

  orch::CoverageGoal goal;
  goal.region_id = "room";
  goal.region = region;
  goal.target_median_snr_db = 10.0;
  const orch::TaskId task = os.orchestrator().optimize_coverage(goal);
  os.step();
  const orch::Task* t = os.orchestrator().find_task(task);
  std::printf(
      "Installed %zu x %s at the planned mounts; measured coverage median "
      "%.1f dB (planner's ideal-steering bound was %.1f dB) -> goal %s\n",
      plan.selected.size(), design->name.c_str(), t->achieved.value_or(-999),
      plan.selected_median_snr_db, t->goal_met ? "met" : "not met");
  std::printf(
      "(The gap to the bound is the price of one shared configuration and\n"
      "column-wise 2-bit hardware versus per-location ideal steering.)\n");
  return 0;
}
