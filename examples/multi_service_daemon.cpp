// Multi-service daemon example: a day in the life of a SurfOS deployment.
//
// Demonstrates the runtime argument of the paper's Section 5 ("OS versus
// libraries or SDKs"): applications come and go, the environment changes,
// goals go unmet and get escalated — all handled by a long-running control
// loop, not compile-time configuration.
#include <cstdio>

#include "core/surfos.hpp"
#include "sim/floorplan.hpp"

using namespace surfos;

namespace {

void report(SurfOS& os, const char* moment) {
  std::printf("--- %s (t = %.1f s) ---\n", moment,
              static_cast<double>(os.clock().now()) / 1e6);
  for (const auto& [app_id, session] : os.broker().sessions()) {
    const broker::AppStatus status = os.broker().status(app_id);
    std::printf("  %-22s %s, %zu/%zu goals met\n", app_id.c_str(),
                status.running ? "running" : "stopped", status.tasks_met,
                status.tasks_total);
  }
}

}  // namespace

int main() {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(6);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 20,
                          20, "room-surface");
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});
  os.register_endpoint("phone", hal::EndpointKind::kClient, {2.2, 1.2, 1.0});
  os.register_endpoint("VR_headset", hal::EndpointKind::kClient,
                       {1.6, 2.0, 1.2});
  os.broker().add_region("this_room",
                         geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 4, 4));

  // Morning: a video call and background phone charging.
  (void)os.broker().start_app("morning-call",
                              broker::demand_profile(
                                  broker::AppClass::kVideoConference,
                                  "laptop"));
  (void)os.broker().start_app("charge-phone",
                              broker::demand_profile(
                                  broker::AppClass::kWirelessCharging,
                                  "phone"));
  os.step();
  report(os, "morning");

  // Midday: the call ends; a VR session starts and wants much more SNR.
  (void)os.broker().stop_app("morning-call");
  (void)os.broker().start_app(
      "vr-session",
      broker::demand_profile(broker::AppClass::kVrGaming, "VR_headset"));
  os.clock().advance(2 * hal::kMicrosPerSecond);
  os.step();
  report(os, "midday: VR starts");

  // The broker monitors: unmet goals are escalated and re-optimized.
  const std::size_t escalated = os.broker().escalate_unsatisfied();
  os.step();
  std::printf("  (broker escalated %zu unsatisfied task(s))\n", escalated);
  report(os, "after escalation");

  // Afternoon: furniture moved — the environment changed, SurfOS re-plans.
  os.orchestrator().notify_environment_changed();
  const orch::StepReport replanned = os.step();
  std::printf("  (environment change -> %zu re-optimization(s))\n",
              replanned.optimizations_run);
  report(os, "after re-planning");

  // Evening: everything winds down; resources are released.
  (void)os.broker().stop_app("vr-session");
  (void)os.broker().stop_app("charge-phone");
  const orch::StepReport idle = os.step();
  std::printf("--- evening: %zu active slice(s) remain ---\n",
              idle.assignment_count);
  return 0;
}
