// Joint communication and sensing example (the paper's Fig 5 capability,
// as an app): one surface, one configuration, two services at once.
//
// A smart-home app wants continuous room tracking while a streaming app
// wants coverage. SurfOS admits both tasks, the scheduler multiplexes them
// onto the same configuration (configuration multiplexing), and both goals
// are met — then the tracking app finishes and its resources are released.
#include <cstdio>

#include "core/surfos.hpp"
#include "sim/floorplan.hpp"

using namespace surfos;

int main() {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(8);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);

  // Element-wise hardware gives the joint optimizer full freedom; install a
  // 20x20 surface synthesized from a datasheet (the Section 3.4 workflow).
  (void)os.install_from_datasheet(
      "model: RoomSurface-28\n"
      "frequency: 28 GHz\n"
      "mode: reflective\n"
      "reconfigurable: yes\n"
      "elements: 20x20\n"
      "insertion_loss: 1 dB\n"
      "control_delay: 500 us\n",
      scene.surface_pose, "room-surface");

  const geom::SampleGrid room(0.8, 2.8, 0.5, 2.5, 1.0, 5, 5);

  orch::CoverageGoal coverage;
  coverage.region_id = "room";
  coverage.region = room;
  coverage.target_median_snr_db = 12.0;
  orch::SensingGoal tracking;
  tracking.region_id = "room";
  tracking.region = room;
  tracking.mode = orch::SensingMode::kTracking;
  tracking.duration_s = 1800.0;
  tracking.target_accuracy_m = 0.5;

  const auto coverage_task = os.orchestrator().optimize_coverage(coverage);
  const auto tracking_task = os.orchestrator().enable_sensing(tracking);

  orch::StepReport report = os.step();
  std::printf("One shared configuration serves %zu task(s):\n",
              report.tasks.size());
  const auto* cov = os.orchestrator().find_task(coverage_task);
  const auto* trk = os.orchestrator().find_task(tracking_task);
  std::printf("  coverage : median SNR %.1f dB (target %.0f) -> %s\n",
              cov->achieved.value_or(-999), coverage.target_median_snr_db,
              cov->goal_met ? "met" : "not met");
  std::printf("  tracking : median error %.2f m (target %.1f) -> %s\n",
              trk->achieved.value_or(-1), tracking.target_accuracy_m,
              trk->goal_met ? "met" : "not met");

  // Fast-forward past the tracking task's duration: it completes and the
  // next cycle re-optimizes for coverage alone.
  os.clock().advance(static_cast<hal::Micros>(tracking.duration_s + 1) *
                     hal::kMicrosPerSecond);
  report = os.step();
  std::printf("After the tracking window expired: %s, %zu slice(s) remain\n",
              orch::to_string(os.orchestrator().find_task(tracking_task)->state),
              report.assignment_count);
  std::printf("  coverage-only median SNR: %.1f dB\n",
              os.orchestrator().find_task(coverage_task)->achieved.value_or(
                  -999));
  return cov->goal_met && trk->goal_met ? 0 : 1;
}
