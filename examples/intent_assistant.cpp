// Intent assistant example (the paper's Fig 6 + Section 3.3 workflow as an
// interactive app): type what you want; the intent engine turns it into
// SurfOS service calls; the broker runs them and reports satisfaction.
//
//   $ ./intent_assistant                       # demo script
//   $ echo "charge my phone" | ./intent_assistant -   # read stdin
#include <cstdio>
#include <iostream>
#include <string>

#include "core/surfos.hpp"
#include "sim/floorplan.hpp"

using namespace surfos;

namespace {

void handle(SurfOS& os, const std::string& text) {
  std::printf("> %s\n", text.c_str());
  const broker::IntentResult result = os.broker().handle_utterance(text);
  if (!result.understood) {
    std::printf("  Sorry, no surface service matches that request.\n\n");
    return;
  }
  for (const auto& call : result.calls) {
    std::printf("  %s\n", call.render().c_str());
  }
  os.step();
  for (const auto& [app_id, session] : os.broker().sessions()) {
    const broker::AppStatus status = os.broker().status(app_id);
    if (!status.running) continue;
    std::printf("  [%s] %zu/%zu goals met\n", app_id.c_str(),
                status.tasks_met, status.tasks_total);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(6);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const surface::Catalog catalog = surface::Catalog::standard();
  os.install_programmable(*catalog.find("NR-Surface"), scene.surface_pose, 20,
                          20, "room-surface");
  os.register_endpoint("VR_headset", hal::EndpointKind::kClient,
                       {1.6, 2.0, 1.2});
  os.register_endpoint("laptop", hal::EndpointKind::kClient, {1.2, 2.4, 1.0});
  os.register_endpoint("phone", hal::EndpointKind::kClient, {2.2, 1.2, 1.0});
  os.broker().add_region("this_room",
                         geom::SampleGrid(0.8, 2.8, 0.5, 2.5, 1.0, 4, 4));

  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) handle(os, line);
    }
    return 0;
  }

  // Scripted demo.
  handle(os, "I want to start VR gaming in this room.");
  handle(os, "I want to have an online meeting while charging my phone.");
  handle(os, "actually please track motion in this room for 30 minutes");
  return 0;
}
