// Hybrid deployment example (the paper's Fig 4a architecture, as an app).
//
// A passive transmissive surface in the apartment's interior wall relays the
// AP's beam onto a small programmable surface in the bedroom, which
// re-steers it toward whoever needs it. The example walks the deployment
// workflow a building administrator would follow:
//
//   1. query the design catalog for suitable hardware,
//   2. install both surfaces (the passive one fabricated as a fixed
//      narrow-beam backhaul),
//   3. load a beam codebook onto the steering surface,
//   4. let endpoint RSS feedback pick beams locally as the client moves —
//      the data plane, no control-plane round trips (paper 3.1).
#include <cstdio>

#include "core/surfos.hpp"
#include "hal/codebook.hpp"
#include "hal/feedback.hpp"
#include "sim/floorplan.hpp"

using namespace surfos;

int main() {
  sim::ApartmentScenario scene = sim::make_apartment(8);
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);
  const double freq = em::band_center(scene.band);

  // 1. Design selection. The catalog's only programmable mmWave designs are
  //    column-wise (mmWall, NR-Surface) — shared column states cannot
  //    near-field focus across a 1-3 m room. This is the paper's "existing
  //    designs are inadequate" case (Section 5): synthesize a new
  //    element-wise design from a datasheet instead.
  const surface::Catalog catalog = surface::Catalog::standard();
  const surface::CatalogEntry* passive = catalog.find("PMSat");
  const surface::CatalogEntry* catalog_steer =
      catalog.cheapest_for(em::Band::k24GHz, /*need_programmable=*/true);
  std::printf(
      "Catalog offers %s for steering, but its %s control cannot\n"
      "near-field focus; synthesizing an element-wise design instead.\n",
      catalog_steer->name.c_str(),
      std::string(to_string(catalog_steer->granularity)).c_str());

  // 2. Install. The passive window is fabricated once, as a narrow-beam
  //    backhaul focusing the AP onto the steering surface's mount.
  {
    const surface::SurfacePanel prototype =
        surface::instantiate(*passive, scene.window_mount, 32, 32);
    os.install_passive(*passive, scene.window_mount, 32, 32, "window",
                       prototype.focus_config(scene.ap_position,
                                              scene.bedroom_mount.origin(),
                                              freq));
  }
  (void)os.install_from_datasheet(
      "model: SteerPatch-28\n"
      "frequency: 28 GHz\n"
      "mode: reflective\n"
      "reconfigurable: yes\n"
      "elements: 24x24\n"
      "phase_bits: 2\n"
      "insertion_loss: 2 dB\n"
      "control_delay: 500 us\n"
      "slots: 8\n",
      scene.bedroom_mount, "steer");

  const surface::SurfacePanel& window_panel = os.panel_of("window");
  auto* steer = os.registry().find_surface("steer");
  const surface::SurfacePanel& steer_panel = steer->panel();
  const auto backhaul_cfg =
      os.registry().find_surface("window")->stored_config(0);

  // 3. Beam codebook: one stored configuration per bedroom zone.
  const std::vector<geom::Vec3> beam_targets{
      {1.0, 4.5, 1.0}, {2.0, 5.0, 1.0}, {3.0, 5.2, 1.0}, {3.8, 5.4, 1.0}};
  const std::size_t loaded = hal::load_steering_codebook(
      *steer, window_panel.center(), beam_targets, freq);
  std::printf("Loaded %zu beam(s) into the steering surface's slots.\n",
              loaded);
  os.clock().advance(steer->spec().control_delay_us + 1);
  steer->poll();

  // 4. The client wanders; its RSS feedback per stored slot drives local
  //    beam selection (hysteresis avoids flapping).
  hal::CodebookSelector selector(0.5);
  for (const geom::Vec3& client :
       {geom::Vec3{1.1, 4.6, 1.0}, geom::Vec3{3.7, 5.3, 1.0}}) {
    sim::SceneChannel channel(scene.environment.get(), freq, scene.ap(),
                              {&window_panel, &steer_panel}, {client});
    const auto result =
        selector.sweep_and_select(*steer, [&](std::uint16_t slot) {
          const auto coeffs = channel.coefficients_for(
              std::vector<surface::SurfaceConfig>{backhaul_cfg,
                                                  steer->stored_config(slot)});
          return scene.budget.rss_dbm(std::norm(channel.evaluate(0, coeffs)));
        });
    os.clock().advance(steer->spec().control_delay_us + 1);
    steer->poll();
    const auto active_coeffs = channel.coefficients_for(
        std::vector<surface::SurfaceConfig>{backhaul_cfg,
                                            steer->active_config()});
    const double snr = scene.budget.snr_db(
        std::norm(channel.evaluate(0, active_coeffs)));
    std::printf(
        "Client at (%.1f, %.1f): beam slot %u selected (RSS %.1f dBm), "
        "active slot %u, SNR %.1f dB\n",
        client.x, client.y, result.best_slot, result.best_metric,
        steer->active_slot(), snr);
  }
  return 0;
}
