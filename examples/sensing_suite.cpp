// Sensing suite example: the full sensing substrate on one deployment —
// angle-of-arrival, wideband time-of-flight ranging (no oracle inputs),
// position estimation, and channel-variation motion detection while a
// person walks through the room.
#include <cstdio>

#include "sense/aoa.hpp"
#include "sense/motion.hpp"
#include "sense/steering.hpp"
#include "sense/tof.hpp"
#include "sim/channel.hpp"
#include "sim/dynamics.hpp"
#include "sim/floorplan.hpp"

using namespace surfos;

int main() {
  sim::CoverageRoomScenario scene = sim::make_coverage_room(6);
  const double center_freq = em::band_center(scene.band);

  surface::ElementDesign design;
  design.spacing_m = em::wavelength(center_freq) / 2.0;
  const surface::SurfacePanel panel(
      "aperture", scene.surface_pose, 16, 16, design,
      surface::OperationMode::kReflective,
      surface::Reconfigurability::kProgrammable,
      surface::ControlGranularity::kElement);

  // --- 1. Localization without an oracle: AoA + wideband ToF ---------------
  std::printf("=== Localization: bearing + range from channel snapshots ===\n");
  const auto subcarriers = sense::subcarrier_grid(center_freq, 400e6, 16);
  for (const geom::Vec3 client : {geom::Vec3{1.0, 1.0, 1.0},
                                  geom::Vec3{2.2, 2.6, 1.0},
                                  geom::Vec3{0.6, 2.8, 1.0}}) {
    std::vector<em::CVec> taps;
    for (const double f : subcarriers) {
      const sim::SceneChannel channel(scene.environment.get(), f, scene.ap(),
                                      {&panel}, {client});
      taps.push_back(channel.rx_vector(0, 0));
    }
    const sense::RangeBearing estimate =
        sense::range_and_bearing(panel, subcarriers, taps);
    const geom::Vec3 position =
        sense::position_from_range_bearing(panel, estimate, client.z);
    std::printf(
        "  client (%.1f, %.1f): bearing %+.1f deg, range %.2f m -> estimate "
        "(%.2f, %.2f), error %.2f m (ToF residual %.3f rad)\n",
        client.x, client.y, estimate.azimuth_rad * 57.2958, estimate.range_m,
        position.x, position.y, position.distance_to(client),
        estimate.tof_residual_rad);
  }

  // --- 2. Motion detection while a person crosses the room -----------------
  std::printf("\n=== Motion detection: channel decorrelation over time ===\n");
  em::MaterialDb materials = em::MaterialDb::standard();
  const int body = sim::add_body_material(materials);
  sim::DynamicEnvironment world(materials, [](sim::Environment& env) {
    env.add_horizontal_slab(0.0, 3.5, -1.5, 3.5, 0.0, em::kMatFloor);
    env.add_vertical_wall(0.0, 3.5, 3.5, 3.5, 0.0, 3.0, em::kMatConcrete);
    env.add_vertical_wall(0.0, -1.5, 0.0, 3.5, 0.0, 3.0, em::kMatConcrete);
  });
  sim::MovingBlocker person;
  person.id = "person";
  person.waypoints = {{0.3, -1.0, 0}, {0.3, 3.0, 0}};  // enters at t ~ 2 s
  person.speed_mps = 0.6;
  person.material_id = body;
  world.add_blocker(person);

  std::vector<geom::Vec3> probes;
  for (int i = 0; i < 6; ++i) probes.push_back({0.4 + 0.5 * i, 1.4, 1.0});
  const surface::SurfaceConfig uniform(panel.element_count());

  sense::MotionDetector detector;
  for (int frame = 0; frame <= 14; ++frame) {
    world.advance_to(static_cast<hal::Micros>(frame) *
                     hal::kMicrosPerSecond / 2);
    const sim::SceneChannel channel(&world.environment(), center_freq,
                                    scene.ap(), {&panel}, probes);
    const auto coeffs = channel.coefficients_for(
        std::vector<surface::SurfaceConfig>{uniform});
    em::CVec snapshot(probes.size());
    for (std::size_t j = 0; j < probes.size(); ++j) {
      snapshot[j] = channel.evaluate(j, coeffs);
    }
    const bool motion = detector.update(snapshot);
    std::printf("  t=%4.1f s  person at y=%+.1f  decorrelation %.5f  %s\n",
                frame * 0.5, world.blocker_position("person").y,
                detector.last_score(), motion ? "<< MOTION" : "");
  }
  return 0;
}
