// Quickstart: bring up SurfOS in the 3.5 m coverage room, install one
// programmable surface from the Table-1 catalog, and enhance a client's
// link.
//
//   $ ./quickstart
//
// Walks the full stack: floorplan -> catalog install -> service API ->
// scheduler -> optimizer -> driver control link -> measured SNR.
#include <cstdio>

#include "core/surfos.hpp"
#include "sim/floorplan.hpp"
#include "sim/heatmap.hpp"
#include "telemetry/telemetry.hpp"

int main() {
  using namespace surfos;

  // 1. A furnished two-room scene with a door gap as the only mmWave ingress.
  sim::CoverageRoomScenario scene = sim::make_coverage_room(12);

  // 2. Bring up the OS for the AP and band of this environment.
  SurfOS os(scene.environment.get(), scene.ap(), scene.band, scene.budget);

  // 3. Install a 20x20 NR-Surface-class programmable surface on the wall
  //    mount, and register a client device in the room.
  const surface::Catalog catalog = surface::Catalog::standard();
  const surface::CatalogEntry* design = catalog.find("NR-Surface");
  os.install_programmable(*design, scene.surface_pose, 20, 20, "wall-surface");

  const geom::Vec3 client_position{1.2, 2.4, 1.0};
  os.register_endpoint("laptop", hal::EndpointKind::kClient, client_position);

  // 4. Baseline: what does the client see before any service runs?
  {
    const auto& panel = os.panel_of("wall-surface");
    sim::SceneChannel channel(scene.environment.get(),
                              em::band_center(scene.band), scene.ap(), {&panel},
                              {client_position});
    const surface::SurfaceConfig uniform(panel.element_count());
    const auto power = channel.power_map({{uniform}});
    std::printf("Baseline (uniform surface): RSS %.1f dBm, SNR %.1f dB\n",
                scene.budget.rss_dbm(power[0]), scene.budget.snr_db(power[0]));
  }

  // 5. Ask SurfOS for connectivity: one service call, then one step().
  //    (NR-Surface hardware is column-wise reconfigurable with 2-bit phases,
  //    so the achievable gain is real but bounded — a 12 dB target is what
  //    this hardware class can deliver here; an element-wise design reaches
  //    ~23 dB in the same spot.)
  const orch::TaskHandle task =
      os.orchestrator().enhance_link({"laptop", /*snr=*/12.0, /*latency=*/50.0});
  const orch::StepReport report = os.step();

  std::printf("After enhance_link(): SNR %.1f dB (target 12 dB) -> %s\n",
              task.last_metric().value_or(-999.0),
              task.goal_met() ? "met" : "NOT met");
  std::printf("Scheduler produced %zu assignment(s); %zu optimization(s) ran\n",
              report.assignment_count, report.optimizations_run);

  // 6. What did the control plane spend its time on? Every layer reports
  //    into the process-wide metrics registry (SURFOS_TELEMETRY=off mutes
  //    collection).
  std::printf("\n%s", telemetry::snapshot_table().c_str());
  return task.goal_met() ? 0 : 1;
}
